//! Incremental consistency over *partial* executions.
//!
//! The enumerator and the outcome engine both grow candidates edge by
//! edge: reads-from assignments, coherence placements and abort splits
//! are chosen one at a time, and most partial choices are already
//! doomed — an axiom relation of the target model closes a cycle (or
//! becomes non-empty) long before the candidate is complete. Because
//! the paper's models are *monotone* in exactly the right way — with
//! labels, `po`, dependencies, `rmw` and the transaction classes fixed,
//! every axiom relation only grows as `rf`, `co` and `fr` grow — a
//! violation observed on a partial execution persists in every
//! completion, so the whole subtree can be abandoned.
//!
//! This module provides the machinery both construction paths share:
//!
//! * [`IncrOrder`] — an online cycle detector over a growing relation
//!   (dense reachability rows, O(|E|) words per inserted edge), used
//!   for the per-location coherence gate `acyclic(po_loc | com)` and
//!   for every delta-plan obligation;
//! * [`PartialCandidate`] — an execution whose `rf`/`co` are grown in
//!   place together with a *partial* `fr` (only the from-reads edges
//!   that are already forced), with pooled width-aware checkpoint
//!   frames ([`PartialCandidate::mark`]/[`rewind`][`PartialCandidate::rewind`]/
//!   [`release`][`PartialCandidate::release`]) for depth-first
//!   construction;
//! * [`PruneOracle`] — the per-model viability test. Native models
//!   run their full axiom check on the partial analysis; compiled
//!   `.cat` models run a conservatively filtered program (see
//!   `txmm-cat`). Oracles must be **conservative**: they may say
//!   "viable" for a doomed candidate, never "dead" for a live one.
//!
//! # Delta viability
//!
//! Rebuilding an [`ExecutionAnalysis`] (and the model's derived
//! relations) for every probe dominates the walk. An oracle can
//! instead declare a [`DeltaPlan`]: a set of acyclicity
//! [`Obligation`]s, each a fixed *seed* relation plus rules describing
//! which communication edges (and which derived pairs — left/right
//! compositions with fixed context, transaction lifts) feed it. The
//! candidate then maintains one [`IncrOrder`] per obligation and
//! answers each probe from the detectors alone. A plan marked
//! [`exact`](DeltaPlan::exact) covers every axiom (together with the
//! coherence gate and the incremental RMW-isolation flag), so no
//! analysis is ever rebuilt; an inexact plan is a sound pre-filter
//! (each fed pair is inside a relation the model requires acyclic, so
//! a detector cycle is a definite rejection) and undecided probes fall
//! back to the full re-check, counted in
//! [`PruneStats::fallbacks`].
//!
//! The partial `fr` is the crux of soundness. The closed form
//! `fr = ([R];sloc;[W]) \ (rf⁻¹;(co⁻¹)*)` treats reads *without* an
//! `rf` edge as reads of the initial value, which over-approximates on
//! partial executions and would prune unsoundly. Instead `fr` is
//! maintained explicitly from forced edges only:
//!
//! * `assign_rf(w, r)`   adds `{r} × co-after(w)`;
//! * `assign_init_read(r)` adds `{r} × writes(loc r)` (the initial
//!   write is coherence-before every write);
//! * `push_co(placed, w)` adds `placed × {w}` to `co` and, for every
//!   already-assigned reader of a newly ordered write, `reader → w`.
//!
//! These rules are complete under both co-first and rf-first
//! construction orders, and at a complete assignment the maintained
//! `fr` equals the closed form — so an oracle call at a leaf is the
//! full model check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::analysis::ExecutionAnalysis;
use crate::exec::Execution;
use crate::rel::Rel;
use crate::set::{EventSet, MAX_EVENTS};

/// Per-model viability test over a partial execution.
///
/// Implementations must be conservative: `viable` may return `true`
/// for a candidate whose completions are all inconsistent, but must
/// never return `false` when some completion is consistent.
pub trait PruneOracle: Sync {
    /// May some completion of the partial execution behind `a` be
    /// consistent? `a.fr()` is pre-seeded with the partial `fr`.
    fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool;

    /// Judge a batch of sibling placements in one call, returning a
    /// bitmask (bit `i` set ⇔ `batch[i]` is viable). The default
    /// loops [`PruneOracle::viable`]; implementations with per-call
    /// setup (a `.cat` VM borrow, say) override to amortise it.
    /// Batches never exceed 64 members (one per candidate write).
    fn viable_batch(&self, batch: &[ExecutionAnalysis<'_>]) -> u64 {
        let mut bits = 0u64;
        for (i, a) in batch.iter().enumerate() {
            if self.viable(a) {
                bits |= 1 << i;
            }
        }
        bits
    }

    /// The incremental plan for candidates grown over `x`'s structure
    /// (labels, `po`, dependencies, `rmw` and transaction classes are
    /// fixed; `rf`/`co`/`fr` start empty and grow). `None` (the
    /// default) keeps the recompute-per-probe behaviour.
    fn delta_plan(&self, _x: &Execution) -> Option<DeltaPlan> {
        None
    }

    /// Whether the model entails `acyclic(po_loc | rf | co | fr)`, so
    /// a coherence cycle in the partial kills the subtree without an
    /// oracle call. Default `false` (always sound).
    fn coherence_gate(&self) -> bool {
        false
    }

    /// Whether a rejection stays valid when the *event set* grows:
    /// every relation the model's axioms mention must be preserved
    /// pointwise under induced extension of the event set (and of the
    /// committed-transaction set). True for models built from pairwise
    /// builtins (`po`, locations, fences, dependencies) and their
    /// monotone compositions with `rf`/`co`/`fr`; false whenever a
    /// relation is defined by complement or by composition appearing
    /// on the right of a set difference, where extra events can
    /// *remove* pairs. The outcome engine uses this to subsume one
    /// abort split's rejection into splits that commit strictly more
    /// events. Default `false` (always sound).
    fn event_monotone(&self) -> bool {
        false
    }

    /// Does a clean viability verdict on a **complete** execution
    /// (every read assigned, every coherence order total, transaction
    /// classes fixed) decide full-model consistency, with delta plans
    /// that answer every probe incrementally (exact plans, txns
    /// known)?
    ///
    /// When true, the consistent enumerator assigns transaction
    /// layouts *before* the rf/co walk and trusts surviving leaves
    /// without a downstream full-model re-check: the oracle's leaf
    /// verdict **is** the model's. Native models whose `viable` runs
    /// the full axiom set and whose txn-aware plans are exact return
    /// true; conservative oracles (monotone `.cat` cores with
    /// uncovered checks, inexact-plan models) keep the default
    /// `false` and stay on the filter-at-the-leaves path.
    fn txn_aware_exact(&self) -> bool {
        false
    }
}

/// An oracle that never prunes: the pruned walks degrade to plain
/// enumeration when a model provides no oracle.
pub struct NoPrune;

impl PruneOracle for NoPrune {
    fn viable(&self, _a: &ExecutionAnalysis<'_>) -> bool {
        true
    }
}

/// Batch-size histogram buckets in [`PruneStats`]: sizes
/// 1, 2, 3, 4, ≤8, ≤16, >16.
pub const BATCH_BUCKETS: usize = 7;

/// Representative upper bound of each [`PruneStats::batch_hist`]
/// bucket (used when folding the histogram into a registry series).
pub const BATCH_BOUNDS: [u64; BATCH_BUCKETS] = [1, 2, 3, 4, 8, 16, 64];

fn batch_bucket(k: usize) -> usize {
    match k {
        0..=1 => 0,
        2 => 1,
        3 => 2,
        4 => 3,
        5..=8 => 4,
        9..=16 => 5,
        _ => 6,
    }
}

/// Counters describing how much work pruning avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Construction subtrees abandoned on a non-viable partial.
    pub subtrees_cut: u64,
    /// Complete candidates those subtrees would have materialised.
    pub candidates_skipped: u64,
    /// Oracle invocations that rebuilt an analysis (coherence-gate and
    /// delta fast paths not included). A batched call counts once.
    pub oracle_calls: u64,
    /// Wall-clock microseconds spent inside oracle calls.
    pub oracle_micros: u64,
    /// Probes answered from the incremental delta state alone.
    pub delta_answers: u64,
    /// Probes a delta plan could not decide (inexact plan, detector
    /// still acyclic) that fell back to the full re-check.
    pub fallbacks: u64,
    /// Sibling-placement batches judged.
    pub batches: u64,
    /// Placements across all batches (mean batch size is
    /// `batched_placements / batches`).
    pub batched_placements: u64,
    /// Batch sizes, log-bucketed per [`BATCH_BOUNDS`].
    pub batch_hist: [u64; BATCH_BUCKETS],
}

impl PruneStats {
    /// Accumulate `other` into `self` (saturating).
    pub fn merge(&mut self, other: &PruneStats) {
        self.subtrees_cut = self.subtrees_cut.saturating_add(other.subtrees_cut);
        self.candidates_skipped = self
            .candidates_skipped
            .saturating_add(other.candidates_skipped);
        self.oracle_calls = self.oracle_calls.saturating_add(other.oracle_calls);
        self.oracle_micros = self.oracle_micros.saturating_add(other.oracle_micros);
        self.delta_answers = self.delta_answers.saturating_add(other.delta_answers);
        self.fallbacks = self.fallbacks.saturating_add(other.fallbacks);
        self.batches = self.batches.saturating_add(other.batches);
        self.batched_placements = self
            .batched_placements
            .saturating_add(other.batched_placements);
        for (dst, src) in self.batch_hist.iter_mut().zip(&other.batch_hist) {
            *dst = dst.saturating_add(*src);
        }
    }

    /// Record one sibling batch of `k` placements.
    pub fn record_batch(&mut self, k: usize) {
        self.batches += 1;
        self.batched_placements += k as u64;
        self.batch_hist[batch_bucket(k)] += 1;
    }
}

/// Online cycle detection over a growing relation.
///
/// Maintains, for every event, the set of events *strictly* reachable
/// from it. Inserting an edge is O(|E|) words: the new target's
/// reachability row is OR-ed into every row that already reaches the
/// source. `Copy`, so a depth-first walk checkpoints it by value.
#[derive(Clone, Copy)]
pub struct IncrOrder {
    n: usize,
    reach: [u64; MAX_EVENTS],
}

impl IncrOrder {
    /// An empty order over `n` events.
    pub fn new(n: usize) -> IncrOrder {
        assert!(n <= MAX_EVENTS);
        IncrOrder {
            n,
            reach: [0; MAX_EVENTS],
        }
    }

    /// Does a (non-empty) path lead from `a` to `b`?
    pub fn reaches(&self, a: usize, b: usize) -> bool {
        self.reach[a] & (1 << b) != 0
    }

    /// Insert `a → b`. Returns `false` iff the edge closes a cycle
    /// (the detector is then stale and must be restored or discarded).
    pub fn insert(&mut self, a: usize, b: usize) -> bool {
        debug_assert!(a < self.n && b < self.n);
        if a == b || self.reach[b] & (1 << a) != 0 {
            return false;
        }
        let delta = self.reach[b] | (1 << b);
        if self.reach[a] & delta == delta {
            return true; // already known
        }
        let abit = 1u64 << a;
        for i in 0..self.n {
            if i == a || self.reach[i] & abit != 0 {
                self.reach[i] |= delta;
            }
        }
        true
    }

    /// Copy another detector's live rows into this one (same width).
    #[inline]
    fn copy_from(&mut self, src: &IncrOrder) {
        debug_assert_eq!(self.n, src.n);
        self.reach[..self.n].copy_from_slice(&src.reach[..src.n]);
    }
}

/// The kind of raw communication edge a feed rule triggers on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// A reads-from edge `w → r`.
    Rf,
    /// A coherence edge `v → w`.
    Co,
    /// A forced from-reads edge `r → v`.
    Fr,
}

/// Thread-locality filter on a feed rule's triggering edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeSel {
    /// Any edge of the kind.
    All,
    /// Only cross-thread edges (`rfe`, `coe`, `fre`).
    External,
    /// Only same-thread edges (`rfi`, `coi`, `fri`).
    Internal,
}

/// How an obligation's derived pairs are lifted through the
/// transaction classes before insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lift {
    /// Inserted as-is.
    No,
    /// `weaklift`: both endpoints replaced by their (reflexive) `stxn`
    /// class; pairs inside one class are dropped, as are pairs with a
    /// non-transactional endpoint.
    Weak,
    /// `stronglift`: as weak, but a non-transactional endpoint stands
    /// for itself.
    Strong,
}

/// One edge-feed rule of an [`Obligation`]: when a raw edge `(a, b)`
/// of `kind` passing the `sel`/endpoint filters arrives, the pairs
/// `ctx(a) × rctx(b)` are derived (a missing context stands for the
/// endpoint itself). `ctx` is stored pre-inverted: `ctx.row(a)` is the
/// set of left-context predecessors of `a`.
#[derive(Clone, Debug)]
pub struct ComposeRule {
    /// Triggering edge kind.
    pub kind: EdgeKind,
    /// Thread-locality filter.
    pub sel: EdgeSel,
    /// The edge's source must lie in this set.
    pub a_in: EventSet,
    /// The edge's target must lie in this set.
    pub b_in: EventSet,
    /// Fixed left context, pre-inverted (`x → a` pairs as `row(a)`).
    pub ctx: Option<Rel>,
    /// Fixed right context (`b → y` pairs as `row(b)`).
    pub rctx: Option<Rel>,
}

impl ComposeRule {
    /// A rule inserting the raw edge itself.
    pub fn direct(kind: EdgeKind, sel: EdgeSel) -> ComposeRule {
        ComposeRule {
            kind,
            sel,
            a_in: EventSet::from_bits(u64::MAX),
            b_in: EventSet::from_bits(u64::MAX),
            ctx: None,
            rctx: None,
        }
    }
}

/// One acyclicity obligation of a [`DeltaPlan`]: the detector starts
/// from the fixed `seed` pairs and grows by the `feed` rules, with
/// derived pairs passed through `lift`.
#[derive(Clone, Debug)]
pub struct Obligation {
    /// The structure-fixed part of the obligation's relation.
    pub seed: Rel,
    /// Edge-feed rules delivering the communication-dependent part.
    pub feed: Vec<ComposeRule>,
    /// Transaction lift applied to every derived pair (and already
    /// applied to the seed by the plan builder).
    pub lift: Lift,
}

/// An oracle's incremental viability plan over one fixed structure.
///
/// Soundness contract: every pair an obligation accumulates (seed,
/// fed, lifted) must lie inside a relation the model requires acyclic
/// *on the partial analysis*, so a detector cycle implies the full
/// check rejects. An [`exact`](DeltaPlan::exact) plan additionally
/// covers the complete axiom set, making the converse hold too.
#[derive(Clone, Debug)]
pub struct DeltaPlan {
    /// The acyclicity obligations.
    pub obls: Vec<Obligation>,
    /// Maintain the incremental `empty(rmw ∩ fre;coe)` flag; a hit is
    /// a definite rejection.
    pub track_rmw_isol: bool,
    /// Together with the coherence gate and the RMW flag, the
    /// obligations decide *every* axiom: a clean state is definitely
    /// viable and no analysis needs rebuilding.
    pub exact: bool,
    /// A structure-fixed axiom (e.g. `TxnCancelsRMW`) already failed:
    /// every candidate over this structure is dead.
    pub dead: bool,
    /// Same-thread pairs, for the `External`/`Internal` selectors.
    pub sthd: Rel,
    /// Transaction classes (reflexive on members), for the lifts.
    pub stxn: Rel,
    /// `rmw⁻¹`, for the incremental RMW-isolation rule.
    pub rmw_inv: Rel,
}

impl DeltaPlan {
    /// An empty, inexact plan over `x` (no obligations — every probe
    /// falls back, but the fallback is *counted*, and the RMW flag can
    /// still short-circuit when enabled).
    pub fn fallback(x: &Execution, track_rmw_isol: bool) -> DeltaPlan {
        let n = x.len();
        DeltaPlan {
            obls: Vec::new(),
            track_rmw_isol,
            exact: false,
            dead: false,
            sthd: x.sthd(),
            stxn: x.stxn(),
            rmw_inv: if track_rmw_isol {
                x.rmw().inverse()
            } else {
                Rel::empty(n)
            },
        }
    }
}

/// Validation hook for the differential suite: when enabled, every
/// delta verdict is cross-checked against the recompute-from-scratch
/// oracle answer (equality for exact plans, reject-implies-reject for
/// inexact ones), panicking on divergence.
static VALIDATE_DELTA: AtomicBool = AtomicBool::new(false);

/// Enable or disable delta-vs-recompute cross-checking process-wide.
pub fn set_delta_validation(on: bool) {
    VALIDATE_DELTA.store(on, Ordering::Relaxed);
}

/// The runtime half of a plan: one detector per obligation plus the
/// sticky flags.
struct DeltaState {
    plan: DeltaPlan,
    obls: Vec<IncrOrder>,
    /// `false` once any obligation detector closed a cycle (stale
    /// until a rewind, like the coherence detector).
    ok: bool,
    /// `rmw ∩ fre;coe` became inhabited.
    rmw_bad: bool,
}

/// A pooled checkpoint frame (reused across `mark`/`release` cycles at
/// one depth, so the hot path never allocates).
struct Frame {
    rf: Rel,
    co: Rel,
    fr: Rel,
    coh: IncrOrder,
    coh_ok: bool,
    obls: Vec<IncrOrder>,
    ok: bool,
    rmw_bad: bool,
}

/// An execution under construction: fixed structure (events, `po`,
/// dependencies, `rmw`, transactions), growing `rf`/`co` and a
/// maintained partial `fr` (see the module docs for the edge rules).
pub struct PartialCandidate {
    x: Execution,
    fr: Rel,
    coh: IncrOrder,
    coh_ok: bool,
    delta: Option<DeltaState>,
    frames: Vec<Frame>,
    depth: usize,
}

impl PartialCandidate {
    /// Wrap `x`, whose `rf` and `co` are expected to be empty. The
    /// coherence detector is seeded with `po_loc`.
    pub fn new(x: Execution) -> PartialCandidate {
        let n = x.len();
        let po_loc = x.po_loc();
        let mut coh = IncrOrder::new(n);
        let mut coh_ok = true;
        for (a, b) in po_loc.pairs() {
            coh_ok &= coh.insert(a, b);
        }
        let mut pc = PartialCandidate {
            x,
            fr: Rel::empty(n),
            coh,
            coh_ok,
            delta: None,
            frames: Vec::new(),
            depth: 0,
        };
        // Robustness: fold in any pre-existing communication edges.
        pc.replay_existing();
        pc
    }

    /// Wrap `x` and install the oracle's [`DeltaPlan`], if any.
    pub fn with_oracle(x: Execution, oracle: &dyn PruneOracle) -> PartialCandidate {
        let plan = oracle.delta_plan(&x);
        let mut pc = PartialCandidate::new(x);
        if let Some(plan) = plan {
            pc.install(plan);
        }
        pc
    }

    /// Install a delta plan: seed one detector per obligation, then
    /// replay any pre-existing communication edges through the feeds.
    fn install(&mut self, plan: DeltaPlan) {
        let n = self.x.len();
        let mut obls = Vec::with_capacity(plan.obls.len());
        let mut ok = true;
        for obl in &plan.obls {
            let mut d = IncrOrder::new(n);
            for (a, b) in obl.seed.pairs() {
                ok &= d.insert(a, b);
            }
            obls.push(d);
        }
        self.delta = Some(DeltaState {
            plan,
            obls,
            ok,
            rmw_bad: false,
        });
        self.frames.clear(); // frame shape changed
        self.replay_existing();
    }

    fn replay_existing(&mut self) {
        let (rf, co) = (*self.x.rf(), *self.x.co());
        for (w, r) in rf.pairs() {
            self.raw(EdgeKind::Rf, w, r);
        }
        for (a, b) in co.pairs() {
            self.raw(EdgeKind::Co, a, b);
        }
    }

    /// The execution in its current (partial) state.
    pub fn exec(&self) -> &Execution {
        &self.x
    }

    /// The maintained partial `fr`.
    pub fn fr(&self) -> &Rel {
        &self.fr
    }

    /// `false` once `po_loc | rf | co | fr` acquired a cycle.
    pub fn coherent(&self) -> bool {
        self.coh_ok
    }

    /// Save the mutable state before a choice point. Frames pool and
    /// copy only the live `|E|` rows of each relation/detector.
    pub fn mark(&mut self) {
        if self.depth == self.frames.len() {
            self.frames.push(Frame {
                rf: *self.x.rf(),
                co: *self.x.co(),
                fr: self.fr,
                coh: self.coh,
                coh_ok: self.coh_ok,
                obls: self
                    .delta
                    .as_ref()
                    .map_or_else(Vec::new, |d| d.obls.clone()),
                ok: self.delta.as_ref().is_none_or(|d| d.ok),
                rmw_bad: self.delta.as_ref().is_some_and(|d| d.rmw_bad),
            });
        } else {
            let f = &mut self.frames[self.depth];
            f.rf.copy_from(self.x.rf());
            f.co.copy_from(self.x.co());
            f.fr.copy_from(&self.fr);
            f.coh.copy_from(&self.coh);
            f.coh_ok = self.coh_ok;
            if let Some(ds) = &self.delta {
                for (dst, src) in f.obls.iter_mut().zip(&ds.obls) {
                    dst.copy_from(src);
                }
                f.ok = ds.ok;
                f.rmw_bad = ds.rmw_bad;
            }
        }
        self.depth += 1;
    }

    /// Restore the state saved by the innermost live [`mark`][Self::mark]
    /// (the frame stays live, so a loop can rewind once per branch).
    pub fn rewind(&mut self) {
        let f = &self.frames[self.depth - 1];
        self.x.rf.copy_from(&f.rf);
        self.x.co.copy_from(&f.co);
        self.fr.copy_from(&f.fr);
        self.coh.copy_from(&f.coh);
        self.coh_ok = f.coh_ok;
        if let Some(ds) = &mut self.delta {
            for (dst, src) in ds.obls.iter_mut().zip(&f.obls) {
                dst.copy_from(src);
            }
            ds.ok = f.ok;
            ds.rmw_bad = f.rmw_bad;
        }
    }

    /// Drop the innermost live frame (after a final rewind if the
    /// caller needed one).
    pub fn release(&mut self) {
        debug_assert!(self.depth > 0);
        self.depth -= 1;
    }

    /// Feed one raw communication edge to the coherence detector, the
    /// RMW-isolation rule and every obligation's feed rules.
    fn raw(&mut self, kind: EdgeKind, a: usize, b: usize) {
        // Once a cycle exists every extension keeps it; stop updating
        // the (now stale) detector until a rewind.
        if self.coh_ok {
            self.coh_ok = self.coh.insert(a, b);
        }
        let Some(ds) = self.delta.as_mut() else {
            return;
        };
        let same_thread = ds.plan.sthd.contains(a, b);
        if ds.plan.track_rmw_isol && !ds.rmw_bad && !same_thread {
            // A pair of rmw ∩ (fre ; coe) is complete when its second
            // communication edge arrives; check against the current
            // other half.
            match kind {
                EdgeKind::Fr => {
                    // (a=r, b=v): need w with rmw(r, w) and coe(v, w).
                    for w in self.x.rmw().row(a).iter() {
                        if self.x.co().contains(b, w) && !ds.plan.sthd.contains(b, w) {
                            ds.rmw_bad = true;
                        }
                    }
                }
                EdgeKind::Co => {
                    // (a=v, b=w): need r with rmw(r, w) and fre(r, v).
                    for r in ds.plan.rmw_inv.row(b).iter() {
                        if self.fr.contains(r, a) && !ds.plan.sthd.contains(r, a) {
                            ds.rmw_bad = true;
                        }
                    }
                }
                EdgeKind::Rf => {}
            }
        }
        if !ds.ok {
            return; // stale until rewind
        }
        for (i, obl) in ds.plan.obls.iter().enumerate() {
            for rule in &obl.feed {
                if rule.kind != kind {
                    continue;
                }
                match rule.sel {
                    EdgeSel::All => {}
                    EdgeSel::External if same_thread => continue,
                    EdgeSel::Internal if !same_thread => continue,
                    _ => {}
                }
                if !rule.a_in.contains(a) || !rule.b_in.contains(b) {
                    continue;
                }
                let sources = match &rule.ctx {
                    Some(c) => c.row(a),
                    None => EventSet::singleton(a),
                };
                let targets = match &rule.rctx {
                    Some(c) => c.row(b),
                    None => EventSet::singleton(b),
                };
                let det = &mut ds.obls[i];
                for u in sources.iter() {
                    for v in targets.iter() {
                        match obl.lift {
                            Lift::No => {
                                if !det.insert(u, v) {
                                    ds.ok = false;
                                }
                            }
                            Lift::Weak | Lift::Strong => {
                                if ds.plan.stxn.contains(u, v) {
                                    continue;
                                }
                                let mut su = ds.plan.stxn.row(u).bits();
                                let mut sv = ds.plan.stxn.row(v).bits();
                                if obl.lift == Lift::Strong {
                                    su |= 1 << u;
                                    sv |= 1 << v;
                                }
                                for x in EventSet::from_bits(su).iter() {
                                    for y in EventSet::from_bits(sv).iter() {
                                        if !det.insert(x, y) {
                                            ds.ok = false;
                                        }
                                    }
                                }
                            }
                        }
                        if !ds.ok {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Read `r` takes its value from write `w`: adds the `rf` edge and
    /// the forced `fr` edges `r → co-after(w)`.
    pub fn assign_rf(&mut self, w: usize, r: usize) {
        debug_assert!(!self.x.rf().row(w).contains(r));
        self.x.rf.add(w, r);
        self.raw(EdgeKind::Rf, w, r);
        for v in self.x.co().row(w).iter() {
            self.fr.add(r, v);
            self.raw(EdgeKind::Fr, r, v);
        }
    }

    /// Read `r` takes the initial value: the initial write is
    /// coherence-before everything, so `r` is `fr`-before every write
    /// at its location.
    pub fn assign_init_read(&mut self, r: usize, writes_at_loc: EventSet) {
        for w in writes_at_loc.iter() {
            self.fr.add(r, w);
            self.raw(EdgeKind::Fr, r, w);
        }
    }

    /// Append `w` to a location's coherence order after `placed`
    /// (every already-placed write at that location): adds the total-
    /// order edges `placed × {w}` and, for each already-assigned
    /// reader of a placed write, the forced `fr` edge `reader → w`.
    pub fn push_co(&mut self, placed: EventSet, w: usize) {
        for p in placed.iter() {
            self.x.co.add(p, w);
            self.raw(EdgeKind::Co, p, w);
            for r in self.x.rf().row(p).iter() {
                self.fr.add(r, w);
                self.raw(EdgeKind::Fr, r, w);
            }
        }
    }

    /// Decide viability without rebuilding an analysis, when possible:
    /// `Some(false)` on a coherence-gate or delta rejection,
    /// `Some(true)` when an exact plan's state is clean, `None` when
    /// only the full re-check can answer (counted as a fallback if a
    /// plan exists).
    pub fn probe(&self, oracle: &dyn PruneOracle, stats: &mut PruneStats) -> Option<bool> {
        if oracle.coherence_gate() && !self.coh_ok {
            return Some(false);
        }
        let ds = self.delta.as_ref()?;
        let dead = ds.plan.dead || !ds.ok || ds.rmw_bad;
        if VALIDATE_DELTA.load(Ordering::Relaxed) {
            self.validate_delta(oracle, dead, ds.plan.exact);
        }
        if dead {
            stats.delta_answers += 1;
            return Some(false);
        }
        if ds.plan.exact {
            stats.delta_answers += 1;
            return Some(true);
        }
        stats.fallbacks += 1;
        None
    }

    /// Cross-check the delta verdict against the recompute-from-scratch
    /// oracle answer (the differential suite's hook).
    fn validate_delta(&self, oracle: &dyn PruneOracle, dead: bool, exact: bool) {
        let a = ExecutionAnalysis::with_fr(&self.x, self.fr);
        let full = oracle.viable(&a);
        if exact {
            assert_eq!(
                !dead, full,
                "exact delta verdict diverged from recompute (delta dead={dead}, full={full})"
            );
        } else {
            assert!(
                !(dead && full),
                "inexact delta rejected a candidate the recompute accepts"
            );
        }
    }

    /// Materialise the current state for a batched oracle call.
    pub fn materialise(&self) -> (Execution, Rel) {
        (self.x.clone(), self.fr)
    }

    /// Run the oracle on the current partial state, counting the call
    /// into `stats`. The coherence gate and the delta plan
    /// short-circuit when they can.
    pub fn viable(&self, oracle: &dyn PruneOracle, stats: &mut PruneStats) -> bool {
        if let Some(v) = self.probe(oracle, stats) {
            return v;
        }
        stats.oracle_calls += 1;
        let t0 = Instant::now();
        let a = ExecutionAnalysis::with_fr(&self.x, self.fr);
        let ok = oracle.viable(&a);
        stats.oracle_micros = stats
            .oracle_micros
            .saturating_add(t0.elapsed().as_micros() as u64);
        ok
    }
}

/// Judge a batch of materialised sibling states in one oracle call
/// (one timed region, one `oracle_calls` increment). Returns the
/// viability bitmask.
pub fn judge_batch(
    oracle: &dyn PruneOracle,
    batch: &[(Execution, Rel)],
    stats: &mut PruneStats,
) -> u64 {
    if batch.is_empty() {
        return 0;
    }
    debug_assert!(batch.len() <= 64);
    stats.oracle_calls += 1;
    let t0 = Instant::now();
    let analyses: Vec<ExecutionAnalysis<'_>> = batch
        .iter()
        .map(|(x, fr)| ExecutionAnalysis::with_fr(x, *fr))
        .collect();
    let bits = oracle.viable_batch(&analyses);
    stats.oracle_micros = stats
        .oracle_micros
        .saturating_add(t0.elapsed().as_micros() as u64);
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ExecBuilder;

    #[test]
    fn incr_order_detects_cycles() {
        let mut o = IncrOrder::new(4);
        assert!(o.insert(0, 1));
        assert!(o.insert(1, 2));
        assert!(o.reaches(0, 2));
        assert!(!o.reaches(2, 0));
        assert!(o.insert(3, 0));
        assert!(o.reaches(3, 2));
        // 2 → 3 closes 3 → 0 → 1 → 2 → 3.
        let mut probe = o;
        assert!(!probe.insert(2, 3));
        // Self-loops are cycles.
        assert!(!o.insert(1, 1));
        // Re-inserting a known edge is fine.
        assert!(o.insert(0, 1));
    }

    #[test]
    fn incr_order_matches_transitive_closure() {
        let edges = [(0, 3), (3, 1), (1, 4), (2, 0), (3, 4)];
        let mut o = IncrOrder::new(5);
        let mut r = Rel::empty(5);
        for &(a, b) in &edges {
            assert!(o.insert(a, b));
            r.add(a, b);
        }
        let tc = r.plus();
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(o.reaches(a, b), tc.contains(a, b), "({a},{b})");
            }
        }
    }

    /// Two writes and a read of the same location on separate threads,
    /// with `rf`/`co` stripped back out (the builder insists on a
    /// complete execution; partial candidates start empty).
    fn wwr() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w0 = b.write(t0, 0);
        let t1 = b.new_thread();
        let w1 = b.write(t1, 0);
        let t2 = b.new_thread();
        let r = b.read(t2, 0);
        b.co(w0, w1).rf(w0, r);
        let mut x = b.build().expect("well-formed");
        let n = x.len();
        x.rf = Rel::empty(n);
        x.co = Rel::empty(n);
        x
    }

    #[test]
    fn partial_fr_matches_closed_form_at_completion() {
        // Events: 0 = W x, 1 = W x, 2 = R x. Complete as co: 0 → 1,
        // rf: 0 → 2, so fr must be exactly {2 → 1}.
        let mut pc = PartialCandidate::new(wwr());
        pc.push_co(EventSet::default(), 0);
        pc.push_co(EventSet::singleton(0), 1);
        pc.assign_rf(0, 2);
        assert!(pc.coherent());
        let full = pc.exec().fr();
        assert_eq!(pc.fr(), &full);
        assert!(pc.fr().contains(2, 1));
        assert_eq!(pc.fr().len(), 1);
    }

    #[test]
    fn partial_fr_matches_closed_form_rf_first() {
        // Same completion, choices in the opposite order.
        let mut pc = PartialCandidate::new(wwr());
        pc.assign_rf(0, 2);
        assert!(pc.fr().is_empty()); // no co yet: nothing forced
        pc.push_co(EventSet::default(), 0);
        pc.push_co(EventSet::singleton(0), 1);
        assert_eq!(pc.fr(), &pc.exec().fr());
    }

    #[test]
    fn init_read_is_fr_before_every_write() {
        let mut pc = PartialCandidate::new(wwr());
        pc.assign_init_read(2, EventSet::from_iter([0, 1]));
        assert!(pc.fr().contains(2, 0));
        assert!(pc.fr().contains(2, 1));
        assert!(pc.coherent());
    }

    #[test]
    fn coherence_cycle_is_detected_and_rewound() {
        // Two same-thread writes to one location: po_loc seeds
        // 0 → 1, so placing the coherence order as 1 → 0 closes a
        // cycle; the detector flags it and a rewind clears it.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w0 = b.write(t0, 0);
        let w1 = b.write(t0, 0);
        b.co(w0, w1);
        let mut x = b.build().expect("well-formed");
        let n = x.len();
        x.co = Rel::empty(n);
        let mut pc = PartialCandidate::new(x);
        pc.mark();
        pc.push_co(EventSet::default(), 1);
        pc.push_co(EventSet::singleton(1), 0);
        assert!(!pc.coherent());
        pc.rewind();
        pc.release();
        assert!(pc.coherent());
        assert!(pc.exec().co().is_empty());
        assert!(pc.fr().is_empty());
    }

    #[test]
    fn frames_nest_and_pool() {
        let mut pc = PartialCandidate::new(wwr());
        pc.mark();
        pc.push_co(EventSet::default(), 0);
        pc.mark();
        pc.push_co(EventSet::singleton(0), 1);
        assert!(pc.exec().co().contains(0, 1));
        pc.rewind();
        assert!(!pc.exec().co().contains(0, 1));
        assert!(!pc.exec().co().row(0).is_empty() || pc.exec().co().is_empty());
        pc.release();
        pc.rewind();
        pc.release();
        assert!(pc.exec().co().is_empty());
        // Re-marking reuses the pooled frames.
        pc.mark();
        pc.push_co(EventSet::default(), 1);
        pc.rewind();
        pc.release();
        assert!(pc.exec().co().is_empty());
    }

    #[test]
    fn fr_closes_cycle_through_rf_and_co() {
        // rf(1, 2) then co 0 after 1 forces fr(2, 0); a later rf-style
        // edge 0 → 2 would be cyclic with it — verify the detector
        // already knows 2 reaches 0.
        let mut pc = PartialCandidate::new(wwr());
        pc.assign_rf(1, 2);
        pc.push_co(EventSet::default(), 1);
        pc.push_co(EventSet::singleton(1), 0);
        assert!(pc.fr().contains(2, 0));
        assert!(pc.coherent());
        pc.assign_rf(0, 2); // 0 → 2 → 0
        assert!(!pc.coherent());
    }

    #[test]
    fn no_prune_oracle_counts_calls() {
        let pc = PartialCandidate::new(wwr());
        let mut stats = PruneStats::default();
        assert!(pc.viable(&NoPrune, &mut stats));
        assert_eq!(stats.oracle_calls, 1);
        assert_eq!(stats.subtrees_cut, 0);
        assert_eq!(stats.delta_answers, 0);
        assert_eq!(stats.fallbacks, 0);
    }

    /// An oracle whose plan is exactly `acyclic(po ∪ com)` — the SC
    /// shape — used to exercise the delta path end to end.
    struct ScLike;

    impl PruneOracle for ScLike {
        fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool {
            a.po().union(a.com()).is_acyclic()
        }

        fn coherence_gate(&self) -> bool {
            true
        }

        fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
            let mut plan = DeltaPlan::fallback(x, false);
            plan.exact = true;
            plan.obls.push(Obligation {
                seed: *x.po(),
                feed: vec![
                    ComposeRule::direct(EdgeKind::Rf, EdgeSel::All),
                    ComposeRule::direct(EdgeKind::Co, EdgeSel::All),
                    ComposeRule::direct(EdgeKind::Fr, EdgeSel::All),
                ],
                lift: Lift::No,
            });
            Some(plan)
        }
    }

    #[test]
    fn exact_delta_answers_without_oracle_calls() {
        set_delta_validation(true);
        let mut pc = PartialCandidate::with_oracle(wwr(), &ScLike);
        let mut stats = PruneStats::default();
        assert!(pc.viable(&ScLike, &mut stats));
        pc.mark();
        pc.push_co(EventSet::default(), 0);
        pc.push_co(EventSet::singleton(0), 1);
        pc.assign_rf(1, 2);
        assert!(pc.viable(&ScLike, &mut stats));
        // fr(2, 0)? No: 2 reads from 1, co-last. Add the doomed state:
        // rewind and order co the other way while 2 still reads 1.
        pc.rewind();
        pc.assign_rf(1, 2);
        pc.push_co(EventSet::default(), 1);
        pc.push_co(EventSet::singleton(1), 0); // forces fr(2, 0): viable
        assert!(pc.viable(&ScLike, &mut stats));
        pc.release();
        assert_eq!(stats.oracle_calls, 0, "every probe answered from delta");
        assert_eq!(stats.delta_answers, 3);
        set_delta_validation(false);
    }

    #[test]
    fn inexact_delta_counts_fallbacks() {
        struct Fallbacky;
        impl PruneOracle for Fallbacky {
            fn viable(&self, _a: &ExecutionAnalysis<'_>) -> bool {
                true
            }
            fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
                Some(DeltaPlan::fallback(x, false))
            }
        }
        let pc = PartialCandidate::with_oracle(wwr(), &Fallbacky);
        let mut stats = PruneStats::default();
        assert!(pc.viable(&Fallbacky, &mut stats));
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.oracle_calls, 1);
        assert_eq!(stats.delta_answers, 0);
    }

    #[test]
    fn lifted_obligation_matches_stronglift() {
        // Events 0, 1 in one committed transaction; event 2 outside.
        // A strong-lifted obligation over com must relate the whole
        // class to 2 once any member does.
        use crate::exec::TxnClass;
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w0 = b.write(t0, 0);
        let w1 = b.write(t0, 0);
        let t1 = b.new_thread();
        let w2 = b.write(t1, 0);
        b.co(w0, w1).co(w1, w2);
        let mut x = b.build().expect("well-formed");
        let n = x.len();
        x.co = Rel::empty(n);
        x.txns_mut().push(TxnClass {
            events: vec![w0, w1],
            atomic: false,
        });

        struct IsolOnly;
        impl PruneOracle for IsolOnly {
            fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool {
                a.strong_isol().is_acyclic()
            }
            fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
                let mut plan = DeltaPlan::fallback(x, false);
                plan.exact = true;
                plan.obls.push(Obligation {
                    seed: Rel::empty(x.len()),
                    feed: vec![
                        ComposeRule::direct(EdgeKind::Rf, EdgeSel::All),
                        ComposeRule::direct(EdgeKind::Co, EdgeSel::All),
                        ComposeRule::direct(EdgeKind::Fr, EdgeSel::All),
                    ],
                    lift: Lift::Strong,
                });
                Some(plan)
            }
        }

        set_delta_validation(true);
        let mut pc = PartialCandidate::with_oracle(x, &IsolOnly);
        let mut stats = PruneStats::default();
        // co order 0 < 2 < 1: co(0, 2) lifts to class{0,1} → 2 and
        // co(2, 1) lifts to 2 → class{0,1} — a cycle through the lift
        // (the unlifted co itself stays acyclic).
        pc.mark();
        pc.push_co(EventSet::default(), 0);
        pc.push_co(EventSet::singleton(0), 2);
        pc.push_co(EventSet::from_iter([0, 2]), 1);
        assert!(
            !pc.viable(&IsolOnly, &mut stats),
            "stronglift cycle must be caught by the lifted detector"
        );
        pc.rewind();
        pc.release();
        // co: 0 → 1 → 2 stays acyclic under the lift.
        pc.push_co(EventSet::default(), 0);
        pc.push_co(EventSet::singleton(0), 1);
        pc.push_co(EventSet::from_iter([0, 1]), 2);
        assert!(pc.viable(&IsolOnly, &mut stats));
        assert_eq!(stats.oracle_calls, 0);
        set_delta_validation(false);
    }

    #[test]
    fn rmw_isol_flag_fires_on_external_intervening_write() {
        // Thread 0: rmw pair r (reads x) → w (writes x); thread 1: an
        // interfering write v. fre(r, v) and coe(v, w) inhabit
        // rmw ∩ fre;coe — the flag must fire without an oracle call,
        // in either edge-arrival order.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let w = b.write(t0, 0);
        b.rmw(r, w);
        let t1 = b.new_thread();
        let v = b.write(t1, 0);
        b.co(w, v).rf(w, r);
        let mut x = b.build().expect("well-formed");
        let n = x.len();
        x.rf = Rel::empty(n);
        x.co = Rel::empty(n);

        struct RmwOnly;
        impl PruneOracle for RmwOnly {
            fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool {
                a.rmw_isol().is_empty()
            }
            fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
                let mut plan = DeltaPlan::fallback(x, true);
                plan.exact = true;
                Some(plan)
            }
        }

        set_delta_validation(true);
        let mut stats = PruneStats::default();
        // co first (v before w), then the init read forcing fr(r, v).
        let mut pc = PartialCandidate::with_oracle(x.clone(), &RmwOnly);
        pc.push_co(EventSet::default(), v);
        pc.push_co(EventSet::singleton(v), w);
        assert!(pc.viable(&RmwOnly, &mut stats));
        pc.assign_init_read(r, EventSet::from_iter([v, w]));
        assert!(!pc.viable(&RmwOnly, &mut stats), "fr then co order");

        // fr first, co second.
        let mut pc = PartialCandidate::with_oracle(x, &RmwOnly);
        pc.assign_init_read(r, EventSet::from_iter([v, w]));
        assert!(pc.viable(&RmwOnly, &mut stats));
        pc.push_co(EventSet::default(), v);
        pc.push_co(EventSet::singleton(v), w);
        assert!(!pc.viable(&RmwOnly, &mut stats), "co then fr order");
        assert_eq!(stats.oracle_calls, 0);
        set_delta_validation(false);
    }

    #[test]
    fn judge_batch_counts_one_call() {
        let pc = PartialCandidate::new(wwr());
        let mut stats = PruneStats::default();
        let batch = vec![pc.materialise(), pc.materialise(), pc.materialise()];
        let bits = judge_batch(&NoPrune, &batch, &mut stats);
        assert_eq!(bits, 0b111);
        assert_eq!(stats.oracle_calls, 1);
        stats.record_batch(batch.len());
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_placements, 3);
        assert_eq!(stats.batch_hist[2], 1);
    }

    #[test]
    fn prune_stats_merge_saturates() {
        let mut a = PruneStats {
            subtrees_cut: u64::MAX - 1,
            candidates_skipped: 7,
            oracle_calls: 1,
            oracle_micros: 2,
            delta_answers: 3,
            fallbacks: 1,
            ..PruneStats::default()
        };
        a.record_batch(2);
        let mut b = PruneStats {
            subtrees_cut: 5,
            candidates_skipped: 1,
            oracle_calls: 1,
            oracle_micros: 2,
            delta_answers: 1,
            fallbacks: 2,
            ..PruneStats::default()
        };
        b.record_batch(5);
        a.merge(&b);
        assert_eq!(a.subtrees_cut, u64::MAX);
        assert_eq!(a.candidates_skipped, 8);
        assert_eq!(a.oracle_calls, 2);
        assert_eq!(a.oracle_micros, 4);
        assert_eq!(a.delta_answers, 4);
        assert_eq!(a.fallbacks, 3);
        assert_eq!(a.batches, 2);
        assert_eq!(a.batched_placements, 7);
        assert_eq!(a.batch_hist[1], 1);
        assert_eq!(a.batch_hist[4], 1);
    }
}
