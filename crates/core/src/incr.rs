//! Incremental consistency over *partial* executions.
//!
//! The enumerator and the outcome engine both grow candidates edge by
//! edge: reads-from assignments, coherence placements and abort splits
//! are chosen one at a time, and most partial choices are already
//! doomed — an axiom relation of the target model closes a cycle (or
//! becomes non-empty) long before the candidate is complete. Because
//! the paper's models are *monotone* in exactly the right way — with
//! labels, `po`, dependencies, `rmw` and the transaction classes fixed,
//! every axiom relation only grows as `rf`, `co` and `fr` grow — a
//! violation observed on a partial execution persists in every
//! completion, so the whole subtree can be abandoned.
//!
//! This module provides the machinery both construction paths share:
//!
//! * [`IncrOrder`] — an online cycle detector over a growing relation
//!   (dense reachability rows, O(|E|) words per inserted edge), used
//!   for the per-location coherence gate `acyclic(po_loc | com)`;
//! * [`PartialCandidate`] — an execution whose `rf`/`co` are grown in
//!   place together with a *partial* `fr` (only the from-reads edges
//!   that are already forced), with O(1) [`Checkpoint`] save/restore
//!   for depth-first construction;
//! * [`PruneOracle`] — the per-model viability test. Native models
//!   run their full axiom check on the partial analysis; compiled
//!   `.cat` models run a conservatively filtered program (see
//!   `txmm-cat`). Oracles must be **conservative**: they may say
//!   "viable" for a doomed candidate, never "dead" for a live one.
//!
//! The partial `fr` is the crux of soundness. The closed form
//! `fr = ([R];sloc;[W]) \ (rf⁻¹;(co⁻¹)*)` treats reads *without* an
//! `rf` edge as reads of the initial value, which over-approximates on
//! partial executions and would prune unsoundly. Instead `fr` is
//! maintained explicitly from forced edges only:
//!
//! * `assign_rf(w, r)`   adds `{r} × co-after(w)`;
//! * `assign_init_read(r)` adds `{r} × writes(loc r)` (the initial
//!   write is coherence-before every write);
//! * `push_co(placed, w)` adds `placed × {w}` to `co` and, for every
//!   already-assigned reader of a newly ordered write, `reader → w`.
//!
//! These rules are complete under both co-first and rf-first
//! construction orders, and at a complete assignment the maintained
//! `fr` equals the closed form — so an oracle call at a leaf is the
//! full model check.

use std::time::Instant;

use crate::analysis::ExecutionAnalysis;
use crate::exec::Execution;
use crate::rel::Rel;
use crate::set::{EventSet, MAX_EVENTS};

/// Per-model viability test over a partial execution.
///
/// Implementations must be conservative: `viable` may return `true`
/// for a candidate whose completions are all inconsistent, but must
/// never return `false` when some completion is consistent.
pub trait PruneOracle: Sync {
    /// May some completion of the partial execution behind `a` be
    /// consistent? `a.fr()` is pre-seeded with the partial `fr`.
    fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool;

    /// Whether the model entails `acyclic(po_loc | rf | co | fr)`, so
    /// a coherence cycle in the partial kills the subtree without an
    /// oracle call. Default `false` (always sound).
    fn coherence_gate(&self) -> bool {
        false
    }

    /// Whether a rejection stays valid when the *event set* grows:
    /// every relation the model's axioms mention must be preserved
    /// pointwise under induced extension of the event set (and of the
    /// committed-transaction set). True for models built from pairwise
    /// builtins (`po`, locations, fences, dependencies) and their
    /// monotone compositions with `rf`/`co`/`fr`; false whenever a
    /// relation is defined by complement or by composition appearing
    /// on the right of a set difference, where extra events can
    /// *remove* pairs. The outcome engine uses this to subsume one
    /// abort split's rejection into splits that commit strictly more
    /// events. Default `false` (always sound).
    fn event_monotone(&self) -> bool {
        false
    }
}

/// An oracle that never prunes: the pruned walks degrade to plain
/// enumeration when a model provides no oracle.
pub struct NoPrune;

impl PruneOracle for NoPrune {
    fn viable(&self, _a: &ExecutionAnalysis<'_>) -> bool {
        true
    }
}

/// Counters describing how much work pruning avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Construction subtrees abandoned on a non-viable partial.
    pub subtrees_cut: u64,
    /// Complete candidates those subtrees would have materialised.
    pub candidates_skipped: u64,
    /// Oracle invocations (coherence-gate fast rejects not included).
    pub oracle_calls: u64,
    /// Wall-clock microseconds spent inside oracle calls.
    pub oracle_micros: u64,
}

impl PruneStats {
    /// Accumulate `other` into `self` (saturating).
    pub fn merge(&mut self, other: &PruneStats) {
        self.subtrees_cut = self.subtrees_cut.saturating_add(other.subtrees_cut);
        self.candidates_skipped = self
            .candidates_skipped
            .saturating_add(other.candidates_skipped);
        self.oracle_calls = self.oracle_calls.saturating_add(other.oracle_calls);
        self.oracle_micros = self.oracle_micros.saturating_add(other.oracle_micros);
    }
}

/// Online cycle detection over a growing relation.
///
/// Maintains, for every event, the set of events *strictly* reachable
/// from it. Inserting an edge is O(|E|) words: the new target's
/// reachability row is OR-ed into every row that already reaches the
/// source. `Copy`, so a depth-first walk checkpoints it by value.
#[derive(Clone, Copy)]
pub struct IncrOrder {
    n: usize,
    reach: [u64; MAX_EVENTS],
}

impl IncrOrder {
    /// An empty order over `n` events.
    pub fn new(n: usize) -> IncrOrder {
        assert!(n <= MAX_EVENTS);
        IncrOrder {
            n,
            reach: [0; MAX_EVENTS],
        }
    }

    /// Does a (non-empty) path lead from `a` to `b`?
    pub fn reaches(&self, a: usize, b: usize) -> bool {
        self.reach[a] & (1 << b) != 0
    }

    /// Insert `a → b`. Returns `false` iff the edge closes a cycle
    /// (the detector is then stale and must be restored or discarded).
    pub fn insert(&mut self, a: usize, b: usize) -> bool {
        debug_assert!(a < self.n && b < self.n);
        if a == b || self.reach[b] & (1 << a) != 0 {
            return false;
        }
        let delta = self.reach[b] | (1 << b);
        if self.reach[a] & delta == delta {
            return true; // already known
        }
        let abit = 1u64 << a;
        for i in 0..self.n {
            if i == a || self.reach[i] & abit != 0 {
                self.reach[i] |= delta;
            }
        }
        true
    }
}

/// A depth-first checkpoint of a [`PartialCandidate`]: plain `Copy`
/// data, saved before a choice and restored on backtrack.
#[derive(Clone, Copy)]
pub struct Checkpoint {
    rf: Rel,
    co: Rel,
    fr: Rel,
    coh: IncrOrder,
    coh_ok: bool,
}

/// An execution under construction: fixed structure (events, `po`,
/// dependencies, `rmw`, transactions), growing `rf`/`co` and a
/// maintained partial `fr` (see the module docs for the edge rules).
pub struct PartialCandidate {
    x: Execution,
    fr: Rel,
    coh: IncrOrder,
    coh_ok: bool,
}

impl PartialCandidate {
    /// Wrap `x`, whose `rf` and `co` are expected to be empty. The
    /// coherence detector is seeded with `po_loc`.
    pub fn new(x: Execution) -> PartialCandidate {
        let n = x.len();
        let po_loc = x.po_loc();
        let mut coh = IncrOrder::new(n);
        let mut coh_ok = true;
        for (a, b) in po_loc.pairs() {
            coh_ok &= coh.insert(a, b);
        }
        let mut pc = PartialCandidate {
            x,
            fr: Rel::empty(n),
            coh,
            coh_ok,
        };
        // Robustness: fold in any pre-existing communication edges.
        let (rf, co) = (*pc.x.rf(), *pc.x.co());
        for (w, r) in rf.pairs() {
            pc.edge(w, r);
        }
        for (a, b) in co.pairs() {
            pc.edge(a, b);
        }
        pc
    }

    /// The execution in its current (partial) state.
    pub fn exec(&self) -> &Execution {
        &self.x
    }

    /// The maintained partial `fr`.
    pub fn fr(&self) -> &Rel {
        &self.fr
    }

    /// `false` once `po_loc | rf | co | fr` acquired a cycle.
    pub fn coherent(&self) -> bool {
        self.coh_ok
    }

    /// Save the mutable state before a choice point.
    pub fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            rf: *self.x.rf(),
            co: *self.x.co(),
            fr: self.fr,
            coh: self.coh,
            coh_ok: self.coh_ok,
        }
    }

    /// Undo back to `c` (must snapshot the same candidate).
    pub fn restore(&mut self, c: &Checkpoint) {
        self.x.rf = c.rf;
        self.x.co = c.co;
        self.fr = c.fr;
        self.coh = c.coh;
        self.coh_ok = c.coh_ok;
    }

    fn edge(&mut self, a: usize, b: usize) {
        // Once a cycle exists every extension keeps it; stop updating
        // the (now stale) detector until a restore.
        if self.coh_ok {
            self.coh_ok = self.coh.insert(a, b);
        }
    }

    /// Read `r` takes its value from write `w`: adds the `rf` edge and
    /// the forced `fr` edges `r → co-after(w)`.
    pub fn assign_rf(&mut self, w: usize, r: usize) {
        debug_assert!(!self.x.rf().row(w).contains(r));
        self.x.rf.add(w, r);
        self.edge(w, r);
        for v in self.x.co().row(w).iter() {
            self.fr.add(r, v);
            self.edge(r, v);
        }
    }

    /// Read `r` takes the initial value: the initial write is
    /// coherence-before everything, so `r` is `fr`-before every write
    /// at its location.
    pub fn assign_init_read(&mut self, r: usize, writes_at_loc: EventSet) {
        for w in writes_at_loc.iter() {
            self.fr.add(r, w);
            self.edge(r, w);
        }
    }

    /// Append `w` to a location's coherence order after `placed`
    /// (every already-placed write at that location): adds the total-
    /// order edges `placed × {w}` and, for each already-assigned
    /// reader of a placed write, the forced `fr` edge `reader → w`.
    pub fn push_co(&mut self, placed: EventSet, w: usize) {
        for p in placed.iter() {
            self.x.co.add(p, w);
            self.edge(p, w);
            for r in self.x.rf().row(p).iter() {
                self.fr.add(r, w);
                self.edge(r, w);
            }
        }
    }

    /// Run the oracle on the current partial state, counting the call
    /// into `stats`. The coherence gate short-circuits when the model
    /// vouches for it.
    pub fn viable(&self, oracle: &dyn PruneOracle, stats: &mut PruneStats) -> bool {
        if oracle.coherence_gate() && !self.coh_ok {
            return false;
        }
        stats.oracle_calls += 1;
        let t0 = Instant::now();
        let a = ExecutionAnalysis::with_fr(&self.x, self.fr);
        let ok = oracle.viable(&a);
        stats.oracle_micros = stats
            .oracle_micros
            .saturating_add(t0.elapsed().as_micros() as u64);
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ExecBuilder;

    #[test]
    fn incr_order_detects_cycles() {
        let mut o = IncrOrder::new(4);
        assert!(o.insert(0, 1));
        assert!(o.insert(1, 2));
        assert!(o.reaches(0, 2));
        assert!(!o.reaches(2, 0));
        assert!(o.insert(3, 0));
        assert!(o.reaches(3, 2));
        // 2 → 3 closes 3 → 0 → 1 → 2 → 3.
        let mut probe = o;
        assert!(!probe.insert(2, 3));
        // Self-loops are cycles.
        assert!(!o.insert(1, 1));
        // Re-inserting a known edge is fine.
        assert!(o.insert(0, 1));
    }

    #[test]
    fn incr_order_matches_transitive_closure() {
        let edges = [(0, 3), (3, 1), (1, 4), (2, 0), (3, 4)];
        let mut o = IncrOrder::new(5);
        let mut r = Rel::empty(5);
        for &(a, b) in &edges {
            assert!(o.insert(a, b));
            r.add(a, b);
        }
        let tc = r.plus();
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(o.reaches(a, b), tc.contains(a, b), "({a},{b})");
            }
        }
    }

    /// Two writes and a read of the same location on separate threads,
    /// with `rf`/`co` stripped back out (the builder insists on a
    /// complete execution; partial candidates start empty).
    fn wwr() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w0 = b.write(t0, 0);
        let t1 = b.new_thread();
        let w1 = b.write(t1, 0);
        let t2 = b.new_thread();
        let r = b.read(t2, 0);
        b.co(w0, w1).rf(w0, r);
        let mut x = b.build().expect("well-formed");
        let n = x.len();
        x.rf = Rel::empty(n);
        x.co = Rel::empty(n);
        x
    }

    #[test]
    fn partial_fr_matches_closed_form_at_completion() {
        // Events: 0 = W x, 1 = W x, 2 = R x. Complete as co: 0 → 1,
        // rf: 0 → 2, so fr must be exactly {2 → 1}.
        let mut pc = PartialCandidate::new(wwr());
        pc.push_co(EventSet::default(), 0);
        pc.push_co(EventSet::singleton(0), 1);
        pc.assign_rf(0, 2);
        assert!(pc.coherent());
        let full = pc.exec().fr();
        assert_eq!(pc.fr(), &full);
        assert!(pc.fr().contains(2, 1));
        assert_eq!(pc.fr().len(), 1);
    }

    #[test]
    fn partial_fr_matches_closed_form_rf_first() {
        // Same completion, choices in the opposite order.
        let mut pc = PartialCandidate::new(wwr());
        pc.assign_rf(0, 2);
        assert!(pc.fr().is_empty()); // no co yet: nothing forced
        pc.push_co(EventSet::default(), 0);
        pc.push_co(EventSet::singleton(0), 1);
        assert_eq!(pc.fr(), &pc.exec().fr());
    }

    #[test]
    fn init_read_is_fr_before_every_write() {
        let mut pc = PartialCandidate::new(wwr());
        pc.assign_init_read(2, EventSet::from_iter([0, 1]));
        assert!(pc.fr().contains(2, 0));
        assert!(pc.fr().contains(2, 1));
        assert!(pc.coherent());
    }

    #[test]
    fn coherence_cycle_is_detected_and_restored() {
        // Two same-thread writes to one location: po_loc seeds
        // 0 → 1, so placing the coherence order as 1 → 0 closes a
        // cycle; the detector flags it and a restore clears it.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w0 = b.write(t0, 0);
        let w1 = b.write(t0, 0);
        b.co(w0, w1);
        let mut x = b.build().expect("well-formed");
        let n = x.len();
        x.co = Rel::empty(n);
        let mut pc = PartialCandidate::new(x);
        let root = pc.snapshot();
        pc.push_co(EventSet::default(), 1);
        pc.push_co(EventSet::singleton(1), 0);
        assert!(!pc.coherent());
        pc.restore(&root);
        assert!(pc.coherent());
        assert!(pc.exec().co().is_empty());
        assert!(pc.fr().is_empty());
    }

    #[test]
    fn fr_closes_cycle_through_rf_and_co() {
        // rf(1, 2) then co 0 after 1 forces fr(2, 0); a later rf-style
        // edge 0 → 2 would be cyclic with it — verify the detector
        // already knows 2 reaches 0.
        let mut pc = PartialCandidate::new(wwr());
        pc.assign_rf(1, 2);
        pc.push_co(EventSet::default(), 1);
        pc.push_co(EventSet::singleton(1), 0);
        assert!(pc.fr().contains(2, 0));
        assert!(pc.coherent());
        pc.assign_rf(0, 2); // 0 → 2 → 0
        assert!(!pc.coherent());
    }

    #[test]
    fn no_prune_oracle_counts_calls() {
        let pc = PartialCandidate::new(wwr());
        let mut stats = PruneStats::default();
        assert!(pc.viable(&NoPrune, &mut stats));
        assert_eq!(stats.oracle_calls, 1);
        assert_eq!(stats.subtrees_cut, 0);
    }

    #[test]
    fn prune_stats_merge_saturates() {
        let mut a = PruneStats {
            subtrees_cut: u64::MAX - 1,
            candidates_skipped: 7,
            oracle_calls: 1,
            oracle_micros: 2,
        };
        let b = PruneStats {
            subtrees_cut: 5,
            candidates_skipped: 1,
            oracle_calls: 1,
            oracle_micros: 2,
        };
        a.merge(&b);
        assert_eq!(a.subtrees_cut, u64::MAX);
        assert_eq!(a.candidates_skipped, 8);
        assert_eq!(a.oracle_calls, 2);
        assert_eq!(a.oracle_micros, 4);
    }
}
