//! Canonical forms for executions — the full-execution key plus the
//! **incremental** (prefix) machinery the streaming enumerator prunes
//! with.
//!
//! The seed pipeline canonicalised *after* generation: build every
//! execution, serialise it under all thread permutations
//! ([`canon_key`]), and drop duplicates through a `HashSet`. Almost all
//! of that work is wasted — a symmetry-duplicate is already visible
//! from the partially built candidate. This module factors the
//! canonical order into three **stages that mirror construction
//! order**, so each stage can reject a prefix before the stages below
//! it are ever enumerated:
//!
//! 1. **Kinds** ([`kind_rows_sorted`]): once event kinds are chosen
//!    (before locations, attributes or any relation exists), threads of
//!    equal size must carry non-decreasing kind rows. A violating
//!    prefix is pruned together with its entire location × attribute ×
//!    structure subtree.
//! 2. **Labels** ([`label_canonical`]): once locations and attributes
//!    complete the per-event labels, the label matrix must be the
//!    minimum of its orbit under kind-preserving thread permutations
//!    composed with first-occurrence location renumbering. Non-minimal
//!    label assignments are pruned before the relation cross-product;
//!    the survivors get their **automorphism group** back.
//! 3. **Structure** ([`struct_key`]): relations and transactions are
//!    only ambiguous under the (usually trivial) automorphism group, so
//!    a finished candidate is canonical iff its structure serialisation
//!    is minimal among its automorphic images — a stateless test, which
//!    is what lets the enumerator stream with **no dedup set at all**.
//!
//! Composing the stages picks exactly one representative per
//! [`canon_key`]-equivalence class of the generated space (threads are
//! laid out in non-increasing shape order, so every identifying
//! permutation is shape-preserving), which the differential suite
//! checks against the seed generate-then-dedup path.

use crate::event::EventKind;
use crate::exec::Execution;
use crate::rel::Rel;

/// A fixed total order on event kinds for serialisation.
pub fn kind_tag(k: EventKind) -> u8 {
    use crate::event::Fence;
    match k {
        EventKind::Read => 0,
        EventKind::Write => 1,
        EventKind::Fence(f) => {
            2 + match f {
                Fence::MFence => 0,
                Fence::Sync => 1,
                Fence::Lwsync => 2,
                Fence::Isync => 3,
                Fence::Dmb => 4,
                Fence::DmbLd => 5,
                Fence::DmbSt => 6,
                Fence::Isb => 7,
                Fence::CppFence => 8,
            }
        }
        EventKind::Call(c) => 11 + c as u8,
    }
}

/// Serialise the execution under one thread permutation, relabelling
/// locations by first occurrence.
fn serialise(x: &Execution, perm: &[usize]) -> Vec<u8> {
    let nt = x.num_threads();
    // New event order: threads in `perm` order, po order within.
    let mut order: Vec<usize> = Vec::with_capacity(x.len());
    for &t in perm {
        order.extend(x.thread_events(t as u8));
    }
    let mut newid = vec![0usize; x.len()];
    for (new, &old) in order.iter().enumerate() {
        newid[old] = new;
    }
    // Location relabelling by first occurrence in the new order.
    let mut locmap = [u8::MAX; 64];
    let mut next = 0u8;
    let mut out = Vec::with_capacity(x.len() * 4 + 64);
    out.push(nt as u8);
    for &old in &order {
        let ev = x.event(old);
        let t_old = ev.tid as usize;
        let t_new = perm.iter().position(|&p| p == t_old).expect("tid in perm");
        out.push(t_new as u8);
        out.push(kind_tag(ev.kind));
        out.push(ev.attrs.bits());
        match ev.loc {
            Some(l) => {
                if locmap[l as usize] == u8::MAX {
                    locmap[l as usize] = next;
                    next += 1;
                }
                out.push(locmap[l as usize] + 1);
            }
            None => out.push(0),
        }
    }
    push_structure(&mut out, x, &newid);
    out
}

/// Append the relational part (rf/co/deps/rmw/txns) of `x` under the
/// event renumbering `newid`.
fn push_structure(out: &mut Vec<u8>, x: &Execution, newid: &[usize]) {
    let push_rel = |out: &mut Vec<u8>, tag: u8, rel: &Rel| {
        let mut pairs: Vec<(usize, usize)> =
            rel.pairs().map(|(a, b)| (newid[a], newid[b])).collect();
        pairs.sort_unstable();
        out.push(255);
        out.push(tag);
        for (a, b) in pairs {
            out.push(a as u8);
            out.push(b as u8);
        }
    };
    push_rel(out, 0, x.rf());
    push_rel(out, 1, x.co());
    push_rel(out, 2, x.addr());
    push_rel(out, 3, x.ctrl());
    push_rel(out, 4, x.data());
    push_rel(out, 5, x.rmw());
    // Transactions: sorted class lists with atomic flags.
    let mut classes: Vec<(Vec<usize>, bool)> = x
        .txns()
        .iter()
        .map(|t| {
            let mut evs: Vec<usize> = t.events.iter().map(|&e| newid[e]).collect();
            evs.sort_unstable();
            (evs, t.atomic)
        })
        .collect();
    classes.sort();
    out.push(255);
    out.push(6);
    for (evs, atomic) in classes {
        out.push(254);
        out.push(atomic as u8);
        for e in evs {
            out.push(e as u8);
        }
    }
}

/// All permutations of `0..n`.
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for pos in 0..=rest.len() {
            let mut p = rest.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// The canonical key: the lexicographically smallest serialisation over
/// all thread permutations. This is the *class invariant* — two
/// executions have equal keys iff they differ only by thread
/// permutation and location renaming.
pub fn canon_key(x: &Execution) -> Vec<u8> {
    let nt = x.num_threads();
    permutations(nt)
        .into_iter()
        .map(|p| serialise(x, &p))
        .min()
        .unwrap_or_default()
}

// ---- Stage 1: kinds ----------------------------------------------------

/// Stage-1 prefix check: with threads in non-increasing `shape` order
/// and `tags[e]` the [`kind_tag`] of slot `e` (slots thread-major, po
/// order within a thread), equal-size threads must carry
/// lexicographically non-decreasing kind rows. Kind choices failing
/// this can never serialise minimally, whatever locations, attributes
/// and relations follow — the whole subtree is pruned.
pub fn kind_rows_sorted(shape: &[usize], tags: &[u8]) -> bool {
    let mut off = 0usize;
    for w in shape.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a == b && tags[off..off + a] > tags[off + a..off + 2 * a] {
            return false;
        }
        off += a;
    }
    true
}

// ---- Stage 2: labels ---------------------------------------------------

/// Per-event labels of a partially built candidate: everything the
/// enumerator fixes before relations exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label {
    /// [`kind_tag`] of the event kind.
    pub tag: u8,
    /// Attribute bits.
    pub attrs: u8,
    /// Location, if the event is an access.
    pub loc: Option<u8>,
}

/// Serialise the label matrix under a thread permutation with
/// first-occurrence location renumbering, into `out`.
fn serialise_labels(shape: &[usize], labels: &[Label], perm: &[usize], out: &mut Vec<u8>) {
    out.clear();
    let offsets = thread_offsets(shape);
    let mut locmap = [u8::MAX; 64];
    let mut next = 0u8;
    for &t in perm {
        for l in &labels[offsets[t]..offsets[t] + shape[t]] {
            out.push(l.tag);
            out.push(l.attrs);
            match l.loc {
                Some(loc) => {
                    if locmap[loc as usize] == u8::MAX {
                        locmap[loc as usize] = next;
                        next += 1;
                    }
                    out.push(locmap[loc as usize] + 1);
                }
                None => out.push(0),
            }
        }
    }
}

fn thread_offsets(shape: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(shape.len());
    let mut off = 0;
    for &s in shape {
        offsets.push(off);
        off += s;
    }
    offsets
}

/// The kind-row-stabilising permutations of `shape`'s threads: those
/// permuting only equal-size threads with equal kind rows. Stage-1
/// sorting makes equal rows adjacent, so the group is a product of
/// symmetric groups over runs of identical rows.
fn kind_stabiliser(shape: &[usize], tags: &[u8]) -> Vec<Vec<usize>> {
    let nt = shape.len();
    let offsets = thread_offsets(shape);
    let row = |t: usize| &tags[offsets[t]..offsets[t] + shape[t]];
    // Runs of threads with identical (size, kind row).
    let mut runs: Vec<(usize, usize)> = Vec::new(); // (start, len)
    let mut start = 0;
    for t in 1..=nt {
        if t == nt || shape[t] != shape[start] || row(t) != row(start) {
            runs.push((start, t - start));
            start = t;
        }
    }
    // Cartesian product of within-run permutations.
    let mut perms: Vec<Vec<usize>> = vec![Vec::with_capacity(nt)];
    for (s, len) in runs {
        let locals = permutations(len);
        let mut next = Vec::with_capacity(perms.len() * locals.len());
        for p in &perms {
            for q in &locals {
                let mut r = p.clone();
                r.extend(q.iter().map(|&i| s + i));
                next.push(r);
            }
        }
        perms = next;
    }
    perms
}

/// Stage-2 check: is the completed label assignment the canonical
/// representative of its orbit? Returns `None` to prune (some
/// kind-preserving permutation + location renumbering is strictly
/// smaller), or the **automorphism permutations** (those reproducing
/// the label matrix exactly; always contains the identity) for stage 3.
pub fn label_canonical(shape: &[usize], labels: &[Label]) -> Option<Vec<Vec<usize>>> {
    let tags: Vec<u8> = labels.iter().map(|l| l.tag).collect();
    let perms = kind_stabiliser(shape, &tags);
    if perms.len() == 1 {
        return Some(perms);
    }
    let mut id_ser = Vec::new();
    let identity: Vec<usize> = (0..shape.len()).collect();
    serialise_labels(shape, labels, &identity, &mut id_ser);
    let mut auts = Vec::with_capacity(1);
    let mut buf = Vec::new();
    for p in perms {
        if p == identity {
            auts.push(p);
            continue;
        }
        serialise_labels(shape, labels, &p, &mut buf);
        match buf.cmp(&id_ser) {
            std::cmp::Ordering::Less => return None,
            std::cmp::Ordering::Equal => auts.push(p),
            std::cmp::Ordering::Greater => {}
        }
    }
    Some(auts)
}

// ---- Stage 3: structure ------------------------------------------------

/// Serialise only the relational part of `x` under a thread
/// permutation. Labels are invariant under stage-2 automorphisms, so
/// this is all that can distinguish automorphic images of a finished
/// candidate.
pub fn struct_key(x: &Execution, perm: &[usize]) -> Vec<u8> {
    let mut order: Vec<usize> = Vec::with_capacity(x.len());
    for &t in perm {
        order.extend(x.thread_events(t as u8));
    }
    let mut newid = vec![0usize; x.len()];
    for (new, &old) in order.iter().enumerate() {
        newid[old] = new;
    }
    let mut out = Vec::with_capacity(x.len() * 4 + 32);
    push_structure(&mut out, x, &newid);
    out
}

/// Stage-3 check: a finished candidate over a canonical label
/// assignment is the class representative iff its structure
/// serialisation is minimal among its automorphic images. Stateless —
/// the streaming enumerator carries no dedup set.
pub fn struct_canonical(x: &Execution, auts: &[Vec<usize>]) -> bool {
    if auts.len() <= 1 {
        return true;
    }
    let identity: Vec<usize> = (0..x.num_threads()).collect();
    let id_key = struct_key(x, &identity);
    auts.iter()
        .filter(|p| **p != identity)
        .all(|p| struct_key(x, p) >= id_key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ExecBuilder;

    #[test]
    fn thread_symmetry_collapses() {
        // SB written with threads in either order has the same key.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 0);
        b.read(t0, 1);
        let t1 = b.new_thread();
        b.write(t1, 1);
        b.read(t1, 0);
        let x1 = b.build().unwrap();

        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 1);
        b.read(t0, 0);
        let t1 = b.new_thread();
        b.write(t1, 0);
        b.read(t1, 1);
        let x2 = b.build().unwrap();

        assert_eq!(canon_key(&x1), canon_key(&x2));
    }

    #[test]
    fn location_relabelling() {
        // Same shape with locations renamed: same key.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 2);
        b.read(t0, 2);
        let x1 = b.build().unwrap();
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 0);
        b.read(t0, 0);
        let x2 = b.build().unwrap();
        assert_eq!(canon_key(&x1), canon_key(&x2));
    }

    #[test]
    fn different_rf_distinct() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        let x1 = b.build().unwrap();
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 0);
        b.read(t0, 0); // reads init instead
        let x2 = b.build().unwrap();
        assert_ne!(canon_key(&x1), canon_key(&x2));
    }

    #[test]
    fn txn_membership_distinct() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        b.txn(&[w, r]);
        let x1 = b.build().unwrap();
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        let x2 = b.build().unwrap();
        assert_ne!(canon_key(&x1), canon_key(&x2));
        // Atomic vs relaxed transactions are distinct too.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        b.txn_atomic(&[w, r]);
        let x3 = b.build().unwrap();
        assert_ne!(canon_key(&x1), canon_key(&x3));
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(0).len(), 1);
    }

    #[test]
    fn kind_rows_prefix_check() {
        // Shape (2, 2): rows [W R] vs [R R] are out of order (W=1 > R=0).
        assert!(!kind_rows_sorted(&[2, 2], &[1, 0, 0, 0]));
        assert!(kind_rows_sorted(&[2, 2], &[0, 0, 1, 0]));
        // Unequal sizes never compare.
        assert!(kind_rows_sorted(&[2, 1], &[1, 1, 0]));
        // Equal rows are fine (automorphism, handled later).
        assert!(kind_rows_sorted(&[1, 1], &[1, 1]));
        assert!(kind_rows_sorted(&[], &[]));
    }

    #[test]
    fn label_canonical_prunes_and_reports_automorphisms() {
        let w = |loc| Label {
            tag: 1,
            attrs: 0,
            loc: Some(loc),
        };
        // Two single-write threads on one shared location: swapping the
        // threads reproduces the matrix — an automorphism.
        let auts = label_canonical(&[1, 1], &[w(0), w(0)]).expect("canonical");
        assert_eq!(auts.len(), 2);
        // Distinct locations renumber to the same matrix either way:
        // both orders serialise to loc 1 then loc 2, so the swap is an
        // automorphism here too.
        let auts = label_canonical(&[1, 1], &[w(0), w(1)]).expect("canonical");
        assert_eq!(auts.len(), 2);
        // Attributes break the tie: (attrs 0, attrs 2) is minimal,
        // (attrs 2, attrs 0) is pruned.
        let wa = |attrs| Label {
            tag: 1,
            attrs,
            loc: Some(0),
        };
        assert_eq!(
            label_canonical(&[1, 1], &[wa(0), wa(2)]).map(|a| a.len()),
            Some(1)
        );
        assert!(label_canonical(&[1, 1], &[wa(2), wa(0)]).is_none());
        // Different kinds are out of the stabiliser: no pruning, no
        // non-trivial automorphisms.
        let r = Label {
            tag: 0,
            attrs: 0,
            loc: Some(0),
        };
        let auts = label_canonical(&[1, 1], &[w(0), r]).expect("canonical");
        assert_eq!(auts.len(), 1);
    }

    #[test]
    fn struct_canonical_picks_one_orbit_member() {
        // Two identical single-write threads, same location; the co
        // edge can point either way — exactly one direction survives.
        let build = |forward: bool| {
            let mut b = ExecBuilder::new();
            let t0 = b.new_thread();
            let w0 = b.write(t0, 0);
            let t1 = b.new_thread();
            let w1 = b.write(t1, 0);
            if forward {
                b.co(w0, w1);
            } else {
                b.co(w1, w0);
            }
            b.build().unwrap()
        };
        let auts = vec![vec![0, 1], vec![1, 0]];
        let a = struct_canonical(&build(true), &auts);
        let b = struct_canonical(&build(false), &auts);
        assert_ne!(a, b, "exactly one of the two co orientations survives");
        // Both directions share one canonical key.
        assert_eq!(canon_key(&build(true)), canon_key(&build(false)));
        // Trivial automorphism group: everything is canonical.
        assert!(struct_canonical(&build(true), &[vec![0, 1]]));
        assert!(struct_canonical(&build(false), &[vec![0, 1]]));
    }
}
