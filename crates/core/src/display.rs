//! Human-readable rendering of executions: an event table, an edge list,
//! and Graphviz `dot` output mirroring the paper's diagrams.

use crate::event::{loc_name, EventKind};
use crate::exec::Execution;

/// A short label for event `e`, e.g. `a: W x` or `c: R·Acq y`.
pub fn event_label(x: &Execution, e: usize) -> String {
    let ev = x.event(e);
    let name = (b'a' + (e as u8 % 26)) as char;
    let kind = match ev.kind {
        EventKind::Read => "R".to_string(),
        EventKind::Write => "W".to_string(),
        EventKind::Fence(f) => format!("F[{}]", f.mnemonic()),
        EventKind::Call(c) => c.symbol().to_string(),
    };
    let attrs = if ev.attrs.is_empty() {
        String::new()
    } else {
        format!("·{}", ev.attrs)
    };
    match ev.loc {
        Some(l) => format!("{name}: {kind}{attrs} {}", loc_name(l)),
        None => format!("{name}: {kind}{attrs}"),
    }
}

/// Render the execution as readable text: per-thread event columns
/// followed by every non-`po` edge.
pub fn render(x: &Execution) -> String {
    let mut out = String::new();
    for t in 0..x.num_threads() {
        out.push_str(&format!("thread {t}:\n"));
        for e in x.thread_events(t as u8) {
            let txn = match x.txn_of(e) {
                Some(i) if x.txns()[i].atomic => format!("  [txn {i}, atomic]"),
                Some(i) => format!("  [txn {i}]"),
                None => String::new(),
            };
            out.push_str(&format!("  {}{}\n", event_label(x, e), txn));
        }
    }
    let edges: Vec<(&str, crate::rel::Rel)> = vec![
        ("rf", *x.rf()),
        ("co", *x.co()),
        ("fr", x.fr()),
        ("addr", *x.addr()),
        ("ctrl", *x.ctrl()),
        ("data", *x.data()),
        ("rmw", *x.rmw()),
    ];
    for (name, rel) in edges {
        for (a, b) in rel.pairs() {
            let la = (b'a' + (a as u8 % 26)) as char;
            let lb = (b'a' + (b as u8 % 26)) as char;
            out.push_str(&format!("  {la} -{name}-> {lb}\n"));
        }
    }
    out
}

/// Render the execution as a Graphviz digraph (transactions as clusters,
/// like the paper's boxes).
pub fn dot(x: &Execution) -> String {
    let mut out = String::from("digraph execution {\n  node [shape=plaintext];\n");
    let mut in_txn = vec![false; x.len()];
    for (i, t) in x.txns().iter().enumerate() {
        out.push_str(&format!("  subgraph cluster_txn{i} {{\n    style=solid;\n"));
        for &e in &t.events {
            in_txn[e] = true;
            out.push_str(&format!("    e{e} [label=\"{}\"];\n", event_label(x, e)));
        }
        out.push_str("  }\n");
    }
    for (e, covered) in in_txn.iter().enumerate() {
        if !covered {
            out.push_str(&format!("  e{e} [label=\"{}\"];\n", event_label(x, e)));
        }
    }
    // Immediate po edges only, to keep diagrams readable.
    for t in 0..x.num_threads() {
        let mut prev: Option<usize> = None;
        for e in x.thread_events(t as u8) {
            if let Some(p) = prev {
                out.push_str(&format!("  e{p} -> e{e} [label=\"po\"];\n"));
            }
            prev = Some(e);
        }
    }
    for (name, rel) in [
        ("rf", *x.rf()),
        ("co", *x.co()),
        ("fr", x.fr()),
        ("addr", *x.addr()),
        ("ctrl", *x.ctrl()),
        ("data", *x.data()),
        ("rmw", *x.rmw()),
    ] {
        for (a, b) in rel.pairs() {
            out.push_str(&format!(
                "  e{a} -> e{b} [label=\"{name}\", constraint=false];\n"
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ExecBuilder;
    use crate::event::Attrs;

    fn sample() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read_acq(t0, 1);
        let t1 = b.new_thread();
        let w2 = b.write(t1, 1);
        b.rf(w2, r);
        b.txn(&[w2]);
        let _ = w;
        b.build().unwrap()
    }

    #[test]
    fn labels() {
        let x = sample();
        assert_eq!(event_label(&x, 0), "a: W x");
        assert_eq!(event_label(&x, 1), "b: R·Acq y");
        assert_eq!(event_label(&x, 2), "c: W y");
    }

    #[test]
    fn render_mentions_all_threads_and_edges() {
        let x = sample();
        let s = render(&x);
        assert!(s.contains("thread 0"));
        assert!(s.contains("thread 1"));
        assert!(s.contains("c -rf-> b"));
        assert!(s.contains("[txn 0]"));
    }

    #[test]
    fn dot_is_valid_shape() {
        let x = sample();
        let d = dot(&x);
        assert!(d.starts_with("digraph"));
        assert!(d.contains("cluster_txn0"));
        assert!(d.contains("e2 -> e1 [label=\"rf\""));
        assert!(d.ends_with("}\n"));
    }

    #[test]
    fn fence_label() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.fence(t0, crate::event::Fence::Sync);
        let x = b.build().unwrap();
        assert_eq!(event_label(&x, 0), "a: F[sync]");
    }

    #[test]
    fn sc_label_shows_modes() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write_ato(t0, 0, Attrs::SC);
        let x = b.build().unwrap();
        let l = event_label(&x, w);
        assert!(l.contains("Ato"));
        assert!(l.contains("SC"));
    }
}
