//! A small deterministic PRNG (SplitMix64) shared by the randomised
//! simulator runner and the seeded property tests.
//!
//! The build environment has no crate registry, so the `rand` crate is
//! unavailable; everything in this workspace that needs randomness
//! needs *reproducible* randomness anyway (campaigns and property
//! tests report their seed), and SplitMix64 is a well-mixed,
//! dependency-free fit. Not cryptographic.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Any seed (including 0) is fine.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw from `0..bound` (`bound > 0`), via widening multiply —
    /// bias is at most 2⁻⁶⁴·bound, negligible for the tiny bounds used
    /// here.
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(c.below(13) < 13);
        }
        // Different seeds diverge immediately.
        assert_ne!(
            SplitMix64::seed_from_u64(1).next_u64(),
            SplitMix64::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn below_covers_the_range() {
        let mut r = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }
}
