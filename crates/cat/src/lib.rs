//! # txmm-cat
//!
//! A `.cat`-subset DSL — the format of the paper's companion material —
//! with a lexer, parser and evaluator, plus all ten models (five
//! baselines, five transactional extensions) shipped as `.cat` sources.
//!
//! The subset covers everything the paper's models need: the relational
//! operators `| & \ ; ~ ^-1 ? + *`, set cross-products, `[set]`
//! lifting, recursive `let rec … and …` groups (the Power ppo
//! fixpoint), the `weaklift`/`stronglift` combinators of §3.3, and the
//! `acyclic`/`irreflexive`/`empty` checks.
//!
//! Models compile to a relation-algebra bytecode ([`chunk`]) through a
//! lowering pass ([`compile`]) and an optimiser ([`opt`]), and checks
//! execute on a register VM ([`vm`]) specialised per event count. The
//! AST interpreter survives as `CatModel::check_reference` for
//! differential testing.
//!
//! ```
//! use txmm_cat::{cat_model, parse, CatModel};
//! use txmm_models::catalog;
//!
//! // The shipped transactional x86 model forbids Fig. 2's execution.
//! let m = cat_model("x86-tm").unwrap();
//! assert!(!m.consistent(&catalog::fig2()).unwrap());
//!
//! // Ad-hoc models evaluate too.
//! let sc = CatModel::new("sc", parse("acyclic po | com as Order").unwrap());
//! assert!(sc.consistent(&catalog::fig1()).unwrap());
//! ```

pub mod chunk;
pub mod compile;
pub mod eval;
pub mod lexer;
pub mod models;
pub mod opt;
pub mod parser;
pub mod prune;
pub mod vm;

pub use chunk::{Chunk, Op, RelBuiltin, SetBuiltin};
pub use compile::{compile, lower};
pub use eval::{CatModel, CompileStats, Env, EvalError, Value};
pub use lexer::{lex, LexError, Token};
pub use models::{all_cat_models, cat_model, SOURCES};
pub use opt::{optimise, specialise};
pub use parser::{parse, CatFile, CheckKind, Decl, Expr, ParseError};
pub use prune::{prune_program, CatPruneOracle};
pub use vm::Vm;
