//! # txmm-cat
//!
//! A `.cat`-subset DSL — the format of the paper's companion material —
//! with a lexer, parser and evaluator, plus all ten models (five
//! baselines, five transactional extensions) shipped as `.cat` sources.
//!
//! The subset covers everything the paper's models need: the relational
//! operators `| & \ ; ~ ^-1 ? + *`, set cross-products, `[set]`
//! lifting, recursive `let rec … and …` groups (the Power ppo
//! fixpoint), the `weaklift`/`stronglift` combinators of §3.3, and the
//! `acyclic`/`irreflexive`/`empty` checks.
//!
//! ```
//! use txmm_cat::{cat_model, parse, CatModel};
//! use txmm_models::catalog;
//!
//! // The shipped transactional x86 model forbids Fig. 2's execution.
//! let m = cat_model("x86-tm").unwrap();
//! assert!(!m.consistent(&catalog::fig2()).unwrap());
//!
//! // Ad-hoc models evaluate too.
//! let sc = CatModel::new("sc", parse("acyclic po | com as Order").unwrap());
//! assert!(sc.consistent(&catalog::fig1()).unwrap());
//! ```

pub mod eval;
pub mod lexer;
pub mod models;
pub mod parser;

pub use eval::{CatModel, Env, EvalError, Value};
pub use lexer::{lex, LexError, Token};
pub use models::{all_cat_models, cat_model, SOURCES};
pub use parser::{parse, CatFile, CheckKind, Decl, Expr, ParseError};
