//! Optimiser passes over compiled `.cat` chunks.
//!
//! [`optimise`] runs on the generic program once per model: a combined
//! CSE/hoisting pass deduplicates identical subexpressions and rewrites
//! compounds the shared `ExecutionAnalysis` already caches (`po & loc`,
//! `poloc | com`, `rf | co | fr`, `stronglift(com, stxn)`, ...) into
//! single builtin loads, dead-definition elimination drops bindings no
//! check reaches, and a linear-scan pass compacts the register banks so
//! the VM's per-run register file stays small.
//!
//! [`specialise`] then clones the optimised program per event count:
//! every subexpression built only from count-constants (`id`, `unv`,
//! `_`, `emptyset`) folds into the chunk's constant pools, followed by
//! another DCE + compaction round. The tiered cache in `CatModel` keys
//! these on the event count.
//!
//! All passes treat a `let rec` group's `[start, end)` op range
//! atomically: values live across a group survive to its last op, CSE
//! invalidates cached expressions when a bound register mutates, and
//! DCE keeps or drops a group's `FixUpdate`/`FixLoop` scaffolding as a
//! unit.

use std::collections::HashMap;

use txmm_core::{stronglift, weaklift, EventSet, Rel};

use crate::chunk::{AnyReg, Chunk, Op, RReg, RelBuiltin, SReg, SetBuiltin};

/// Optimise a freshly lowered generic chunk: CSE + analysis hoisting,
/// dead-definition elimination, register compaction.
pub fn optimise(c: Chunk) -> Chunk {
    compact(dce(cse(c)))
}

/// Specialise an optimised chunk to one event count: fold
/// count-constant subexpressions into the constant pools, then clean up
/// with another DCE + compaction round.
pub fn specialise(c: &Chunk, n: usize) -> Chunk {
    let mut t = fold(c.clone(), n);
    t.events = Some(n);
    prune_pools(compact(dce(t)))
}

/// A value-numbering key: an op minus its destination, with commutative
/// operands sorted. Two ops with equal keys compute equal values (as
/// long as no fixpoint-bound operand mutated in between, which the CSE
/// pass tracks via taint bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    LoadR(RelBuiltin),
    LoadS(SetBuiltin),
    Universe,
    UnionR(u16, u16),
    InterR(u16, u16),
    DiffR(u16, u16),
    SeqR(u16, u16),
    UnionS(u16, u16),
    InterS(u16, u16),
    DiffS(u16, u16),
    Cross(u16, u16),
    IdOn(u16),
    Plus(u16),
    Star(u16),
    Opt(u16),
    Inverse(u16),
    ComplementR(u16),
    ComplementS(u16),
    Domain(u16),
    Range(u16),
    Weaklift(u16, u16),
    Stronglift(u16, u16),
    Fencerel(u16),
}

fn sorted(a: u16, b: u16) -> (u16, u16) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Does this value-number key read the given register? Used to evict
/// available expressions whose *operands* are redefined.
fn key_uses(key: &Key, reg: AnyReg) -> bool {
    use Key::*;
    match (*key, reg) {
        (UnionR(a, b) | InterR(a, b) | DiffR(a, b) | SeqR(a, b), AnyReg::R(x))
        | (Weaklift(a, b) | Stronglift(a, b), AnyReg::R(x)) => a == x || b == x,
        (UnionS(a, b) | InterS(a, b) | DiffS(a, b) | Cross(a, b), AnyReg::S(x)) => a == x || b == x,
        (Plus(s) | Star(s) | Opt(s) | Inverse(s) | ComplementR(s), AnyReg::R(x))
        | (Domain(s) | Range(s), AnyReg::R(x)) => s == x,
        (IdOn(s) | ComplementS(s) | Fencerel(s), AnyReg::S(x)) => s == x,
        _ => false,
    }
}

fn key_of(op: &Op) -> Option<Key> {
    Some(match *op {
        Op::LoadR { b, .. } => Key::LoadR(b),
        Op::LoadS { b, .. } => Key::LoadS(b),
        Op::Universe { .. } => Key::Universe,
        Op::UnionR { a, b, .. } => {
            let (a, b) = sorted(a.0, b.0);
            Key::UnionR(a, b)
        }
        Op::InterR { a, b, .. } => {
            let (a, b) = sorted(a.0, b.0);
            Key::InterR(a, b)
        }
        Op::DiffR { a, b, .. } => Key::DiffR(a.0, b.0),
        Op::SeqR { a, b, .. } => Key::SeqR(a.0, b.0),
        Op::UnionS { a, b, .. } => {
            let (a, b) = sorted(a.0, b.0);
            Key::UnionS(a, b)
        }
        Op::InterS { a, b, .. } => {
            let (a, b) = sorted(a.0, b.0);
            Key::InterS(a, b)
        }
        Op::DiffS { a, b, .. } => Key::DiffS(a.0, b.0),
        Op::Cross { a, b, .. } => Key::Cross(a.0, b.0),
        Op::IdOn { src, .. } => Key::IdOn(src.0),
        Op::Plus { src, .. } => Key::Plus(src.0),
        Op::Star { src, .. } => Key::Star(src.0),
        Op::Opt { src, .. } => Key::Opt(src.0),
        Op::Inverse { src, .. } => Key::Inverse(src.0),
        Op::ComplementR { src, .. } => Key::ComplementR(src.0),
        Op::ComplementS { src, .. } => Key::ComplementS(src.0),
        Op::Domain { src, .. } => Key::Domain(src.0),
        Op::Range { src, .. } => Key::Range(src.0),
        Op::Weaklift { a, b, .. } => Key::Weaklift(a.0, b.0),
        Op::Stronglift { a, b, .. } => Key::Stronglift(a.0, b.0),
        Op::Fencerel { src, .. } => Key::Fencerel(src.0),
        Op::ConstR { .. }
        | Op::ConstS { .. }
        | Op::EmptyR { .. }
        | Op::FixUpdate { .. }
        | Op::FixLoop { .. }
        | Op::Check { .. } => return None,
    })
}

/// Rewrite a compound the shared analysis caches into a single builtin
/// load. `desc` gives the builtin (if any) each relation register
/// currently holds; `keys` the defining expression, for the two-level
/// patterns (`rmw & (fre ; coe)`, `rf | co | fr`).
fn hoist(op: &Op, desc: &[Option<RelBuiltin>], keys: &[Option<Key>]) -> Option<RelBuiltin> {
    use RelBuiltin::*;
    let d = |r: RReg| desc[r.0 as usize];
    let pair = |a: RReg, b: RReg, x: RelBuiltin, y: RelBuiltin| {
        (d(a) == Some(x) && d(b) == Some(y)) || (d(a) == Some(y) && d(b) == Some(x))
    };
    match *op {
        Op::InterR { a, b, .. } => {
            if pair(a, b, Po, Sloc) {
                return Some(PoLoc);
            }
            for (u, v) in [(a, b), (b, a)] {
                if d(u) != Some(Rmw) {
                    continue;
                }
                if let Some(Key::SeqR(p, q)) = keys[v.0 as usize] {
                    if desc[p as usize] == Some(Fre) && desc[q as usize] == Some(Coe) {
                        return Some(RmwIsol);
                    }
                }
                if d(v) == Some(TfencePlus) {
                    return Some(TxnCancelsRmw);
                }
            }
            None
        }
        Op::UnionR { a, b, .. } => {
            if pair(a, b, Addr, Data) {
                return Some(Dp);
            }
            if pair(a, b, PoLoc, Com) {
                return Some(Coherence);
            }
            // `rf | co | fr` in either association order.
            for (u, v) in [(a, b), (b, a)] {
                let Some(Key::UnionR(p, q)) = keys[v.0 as usize] else {
                    continue;
                };
                let mut have = [false; 3];
                for part in [d(u), desc[p as usize], desc[q as usize]] {
                    match part {
                        Some(Rf) => have[0] = true,
                        Some(Co) => have[1] = true,
                        Some(Fr) => have[2] = true,
                        _ => {}
                    }
                }
                if have == [true; 3] {
                    return Some(Com);
                }
            }
            None
        }
        Op::Plus { src, .. } if d(src) == Some(Tfence) => Some(TfencePlus),
        Op::ComplementR { src, .. } if d(src) == Some(Sthd) => Some(Ext),
        Op::Weaklift { a, b, .. } if d(a) == Some(Com) && d(b) == Some(Stxn) => Some(WeakIsol),
        Op::Stronglift { a, b, .. } if d(a) == Some(Com) => match d(b) {
            Some(Stxn) => Some(StrongIsol),
            Some(Stxnat) => Some(StrongIsolAtomic),
            _ => None,
        },
        _ => None,
    }
}

/// Value-numbering CSE with analysis hoisting. Deduplicated ops keep
/// their (now unused) destinations; DCE collects them. Expressions
/// tainted by a fixpoint-bound register are evicted from the available
/// table at that register's `FixUpdate`, which is exactly the program
/// point where its value changes — an in-body reuse *before* the update
/// still sees the same per-iteration value, and the convergence
/// iteration makes in-body values equal their post-loop ones.
fn cse(mut c: Chunk) -> Chunk {
    // One taint bit per fixpoint-bound register.
    let mut bound_bit: HashMap<u16, u32> = HashMap::new();
    for op in &c.ops {
        if let Op::FixUpdate { bound, .. } = op {
            let next = bound_bit.len() as u32;
            bound_bit.entry(bound.0).or_insert(next);
        }
    }
    if bound_bit.len() > 64 {
        return c; // absurdly recursive model; skip CSE rather than mistrack
    }
    let nr = c.rel_regs as usize;
    let ns = c.set_regs as usize;
    let mut sub_r: Vec<u16> = (0..c.rel_regs).collect();
    let mut sub_s: Vec<u16> = (0..c.set_regs).collect();
    let mut taint_r = vec![0u64; nr];
    let mut taint_s = vec![0u64; ns];
    let mut desc_r: Vec<Option<RelBuiltin>> = vec![None; nr];
    let mut key_r: Vec<Option<Key>> = vec![None; nr];
    let mut avail: HashMap<Key, (AnyReg, u64)> = HashMap::new();
    for i in 0..c.ops.len() {
        let mut op = c.ops[i];
        op.rewrite_uses(&|x| sub_r[x as usize], &|x| sub_s[x as usize]);
        // A redefinition kills the register's old value: evict the
        // available expressions it holds or feeds, and any substitution
        // still pointing at it. The compiler's output is nearly SSA so
        // this rarely fires there, but re-optimising a *compacted*
        // chunk (as the prune-oracle derivation does) reuses registers
        // heavily and is unsound without it.
        let redefined = match op {
            Op::FixUpdate { bound, .. } => Some(AnyReg::R(bound.0)),
            Op::FixLoop { .. } | Op::Check { .. } => None,
            _ => op.def(),
        };
        if let Some(def) = redefined {
            avail.retain(|key, &mut (reg, _)| reg != def && !key_uses(key, def));
            match def {
                AnyReg::R(d) => {
                    for (x, slot) in sub_r.iter_mut().enumerate() {
                        if *slot == d {
                            *slot = x as u16;
                        }
                    }
                    desc_r[d as usize] = None;
                    key_r[d as usize] = None;
                }
                AnyReg::S(d) => {
                    for (x, slot) in sub_s.iter_mut().enumerate() {
                        if *slot == d {
                            *slot = x as u16;
                        }
                    }
                }
            }
        }
        match op {
            Op::FixUpdate { bound, .. } => {
                let bit = 1u64 << bound_bit[&bound.0];
                avail.retain(|_, &mut (_, taint)| taint & bit == 0);
                c.ops[i] = op;
                continue;
            }
            Op::FixLoop { .. } | Op::Check { .. } | Op::EmptyR { .. } => {
                c.ops[i] = op;
                continue;
            }
            _ => {}
        }
        if let Some(b) = hoist(&op, &desc_r, &key_r) {
            if let Some(AnyReg::R(dst)) = op.def() {
                op = Op::LoadR { dst: RReg(dst), b };
            }
        }
        let mut taint = 0u64;
        op.uses(&mut |u| {
            taint |= match u {
                AnyReg::R(x) => taint_r[x as usize] | bound_bit.get(&x).map_or(0, |&b| 1 << b),
                AnyReg::S(x) => taint_s[x as usize],
            };
        });
        let def = op.def();
        if let (Some(key), Some(def)) = (key_of(&op), def) {
            if let Some(&(prev, _)) = avail.get(&key) {
                match (def, prev) {
                    (AnyReg::R(d), AnyReg::R(p)) => sub_r[d as usize] = p,
                    (AnyReg::S(d), AnyReg::S(p)) => sub_s[d as usize] = p,
                    _ => unreachable!("key banks never cross"),
                }
                c.ops[i] = op;
                continue;
            }
            avail.insert(key, (def, taint));
            match def {
                AnyReg::R(d) => {
                    taint_r[d as usize] = taint;
                    key_r[d as usize] = Some(key);
                    desc_r[d as usize] = match op {
                        Op::LoadR { b, .. } => Some(b),
                        _ => None,
                    };
                }
                AnyReg::S(d) => taint_s[d as usize] = taint,
            }
        } else if let Some(def) = def {
            match def {
                AnyReg::R(d) => {
                    taint_r[d as usize] = taint;
                    key_r[d as usize] = None;
                    desc_r[d as usize] = None;
                }
                AnyReg::S(d) => taint_s[d as usize] = taint,
            }
        }
        c.ops[i] = op;
    }
    c
}

fn mark(reg: AnyReg, live_r: &mut [bool], live_s: &mut [bool]) -> bool {
    let slot = match reg {
        AnyReg::R(x) => &mut live_r[x as usize],
        AnyReg::S(x) => &mut live_s[x as usize],
    };
    let fresh = !*slot;
    *slot = true;
    fresh
}

/// Dead-definition elimination seeded from the check ops. A fixpoint
/// group lives iff any of its bound registers is live; a live group
/// keeps all its `FixUpdate`s (and their sources) so convergence still
/// tests the whole binding set, exactly like the interpreter's rounds.
fn dce(c: Chunk) -> Chunk {
    let nr = c.rel_regs as usize;
    let ns = c.set_regs as usize;
    let mut live_r = vec![false; nr];
    let mut live_s = vec![false; ns];
    let mut group_of = vec![usize::MAX; c.ops.len()];
    for (g, &(start, end)) in c.fix_groups.iter().enumerate() {
        for slot in &mut group_of[start as usize..end as usize] {
            *slot = g;
        }
    }
    let mut live_group = vec![false; c.fix_groups.len()];
    loop {
        let mut changed = false;
        for (i, op) in c.ops.iter().enumerate().rev() {
            match *op {
                Op::Check { src, .. } => {
                    changed |= mark(AnyReg::R(src.0), &mut live_r, &mut live_s);
                }
                Op::FixUpdate { bound, src } => {
                    let g = group_of[i];
                    if live_r[bound.0 as usize] && !live_group[g] {
                        live_group[g] = true;
                        changed = true;
                    }
                    if live_group[g] {
                        changed |= mark(AnyReg::R(bound.0), &mut live_r, &mut live_s);
                        changed |= mark(AnyReg::R(src.0), &mut live_r, &mut live_s);
                    }
                }
                Op::FixLoop { .. } => {}
                _ => {
                    let live = match op.def() {
                        Some(AnyReg::R(x)) => live_r[x as usize],
                        Some(AnyReg::S(x)) => live_s[x as usize],
                        None => false,
                    };
                    if live {
                        op.uses(&mut |u| changed |= mark(u, &mut live_r, &mut live_s));
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let keep: Vec<bool> = c
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| match op {
            Op::Check { .. } => true,
            Op::FixUpdate { .. } | Op::FixLoop { .. } => live_group[group_of[i]],
            _ => match op.def() {
                Some(AnyReg::R(x)) => live_r[x as usize],
                Some(AnyReg::S(x)) => live_s[x as usize],
                None => true,
            },
        })
        .collect();
    rebuild(c, &keep, &live_group)
}

/// Drop the unkept ops, remapping `FixLoop` targets and the surviving
/// groups' ranges through the prefix count of kept instructions.
fn rebuild(mut c: Chunk, keep: &[bool], keep_group: &[bool]) -> Chunk {
    let mut prefix = vec![0u32; keep.len() + 1];
    for (i, &k) in keep.iter().enumerate() {
        prefix[i + 1] = prefix[i] + k as u32;
    }
    let mut ops = Vec::with_capacity(prefix[keep.len()] as usize);
    for (i, op) in c.ops.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let mut op = *op;
        if let Op::FixLoop { start } = &mut op {
            *start = prefix[*start as usize];
        }
        ops.push(op);
    }
    c.fix_groups = c
        .fix_groups
        .iter()
        .zip(keep_group)
        .filter(|(_, &kept)| kept)
        .map(|(&(s, e), _)| (prefix[s as usize], prefix[e as usize]))
        .collect();
    c.ops = ops;
    c
}

/// Linear-scan register compaction. Values defined before a fixpoint
/// group but read inside it stay live across the whole group (the
/// back-jump re-reads them every iteration), so their ranges extend to
/// the group's last op; everything else frees at its last use, letting
/// destinations alias dying operands (the VM computes into a local
/// before storing).
fn compact(mut c: Chunk) -> Chunk {
    let nr = c.rel_regs as usize;
    let ns = c.set_regs as usize;
    const NEVER: usize = usize::MAX;
    let mut last_r = vec![NEVER; nr];
    let mut last_s = vec![NEVER; ns];
    let mut def_r = vec![NEVER; nr];
    let mut def_s = vec![NEVER; ns];
    for (i, op) in c.ops.iter().enumerate() {
        op.uses(&mut |u| match u {
            AnyReg::R(x) => last_r[x as usize] = i,
            AnyReg::S(x) => last_s[x as usize] = i,
        });
        match op.def() {
            Some(AnyReg::R(x)) if def_r[x as usize] == NEVER => def_r[x as usize] = i,
            Some(AnyReg::S(x)) if def_s[x as usize] == NEVER => def_s[x as usize] = i,
            _ => {}
        }
    }
    for &(start, end) in &c.fix_groups {
        let (start, end) = (start as usize, end as usize);
        for i in start..end {
            c.ops[i].uses(&mut |u| match u {
                AnyReg::R(x) if def_r[x as usize] < start => {
                    let slot = &mut last_r[x as usize];
                    *slot = (*slot).max(end - 1);
                }
                AnyReg::S(x) if def_s[x as usize] < start => {
                    let slot = &mut last_s[x as usize];
                    *slot = (*slot).max(end - 1);
                }
                _ => {}
            });
        }
    }
    let mut map_r = vec![u16::MAX; nr];
    let mut map_s = vec![u16::MAX; ns];
    let mut freed_r = vec![false; nr];
    let mut freed_s = vec![false; ns];
    let mut free_r: Vec<u16> = Vec::new();
    let mut free_s: Vec<u16> = Vec::new();
    let mut next_r: u16 = 0;
    let mut next_s: u16 = 0;
    for i in 0..c.ops.len() {
        let op = c.ops[i];
        op.uses(&mut |u| match u {
            AnyReg::R(x) => {
                let x = x as usize;
                if last_r[x] == i && !freed_r[x] {
                    freed_r[x] = true;
                    free_r.push(map_r[x]);
                }
            }
            AnyReg::S(x) => {
                let x = x as usize;
                if last_s[x] == i && !freed_s[x] {
                    freed_s[x] = true;
                    free_s.push(map_s[x]);
                }
            }
        });
        match op.def() {
            Some(AnyReg::R(x)) if map_r[x as usize] == u16::MAX => {
                map_r[x as usize] = free_r.pop().unwrap_or_else(|| {
                    next_r += 1;
                    next_r - 1
                });
            }
            Some(AnyReg::S(x)) if map_s[x as usize] == u16::MAX => {
                map_s[x as usize] = free_s.pop().unwrap_or_else(|| {
                    next_s += 1;
                    next_s - 1
                });
            }
            _ => {}
        }
        c.ops[i].rewrite_regs(&|x| map_r[x as usize], &|x| map_s[x as usize]);
    }
    c.rel_regs = next_r;
    c.set_regs = next_s;
    c
}

// Folded values are short-lived compile-time scratch; the 520-byte
// `Rel` variant never reaches a hot path.
#[allow(clippy::large_enum_variant)]
enum FoldVal {
    R(Rel),
    S(EventSet),
}

/// Per-tier constant folding: seed from the count-constants (`id`,
/// `unv`, `_`, `emptyset`) and propagate through every pure operator
/// whose operands are known. Fixpoint-bound registers never fold — they
/// mutate — and constness tracks defs positionally, which is sound on
/// compacted (register-reusing) chunks because compaction keeps every
/// loop-crossing value in its own register for the group's duration.
fn fold(mut c: Chunk, n: usize) -> Chunk {
    let mut mutated = vec![false; c.rel_regs as usize];
    for op in &c.ops {
        if let Op::FixUpdate { bound, .. } = op {
            mutated[bound.0 as usize] = true;
        }
    }
    let mut kr: Vec<Option<Rel>> = vec![None; c.rel_regs as usize];
    let mut ks: Vec<Option<EventSet>> = vec![None; c.set_regs as usize];
    let mut rel_consts = std::mem::take(&mut c.rel_consts);
    let mut set_consts = std::mem::take(&mut c.set_consts);
    for i in 0..c.ops.len() {
        let op = c.ops[i];
        let dst_mutated = matches!(op.def(), Some(AnyReg::R(x)) if mutated[x as usize]);
        let r = |x: RReg| kr[x.0 as usize];
        let s = |x: SReg| ks[x.0 as usize];
        let folded: Option<FoldVal> = if dst_mutated {
            None
        } else {
            match op {
                Op::LoadR {
                    b: RelBuiltin::Id, ..
                } => Some(FoldVal::R(Rel::id(n))),
                Op::LoadR {
                    b: RelBuiltin::Unv, ..
                } => Some(FoldVal::R(Rel::full(n))),
                Op::LoadS {
                    b: SetBuiltin::Empty,
                    ..
                } => Some(FoldVal::S(EventSet::EMPTY)),
                Op::Universe { .. } => Some(FoldVal::S(EventSet::universe(n))),
                Op::UnionR { a, b, .. } => r(a).zip(r(b)).map(|(x, y)| FoldVal::R(x.union(&y))),
                Op::InterR { a, b, .. } => r(a).zip(r(b)).map(|(x, y)| FoldVal::R(x.inter(&y))),
                Op::DiffR { a, b, .. } => r(a).zip(r(b)).map(|(x, y)| FoldVal::R(x.minus(&y))),
                Op::SeqR { a, b, .. } => r(a).zip(r(b)).map(|(x, y)| FoldVal::R(x.seq(&y))),
                Op::UnionS { a, b, .. } => s(a).zip(s(b)).map(|(x, y)| FoldVal::S(x.union(y))),
                Op::InterS { a, b, .. } => s(a).zip(s(b)).map(|(x, y)| FoldVal::S(x.inter(y))),
                Op::DiffS { a, b, .. } => s(a).zip(s(b)).map(|(x, y)| FoldVal::S(x.minus(y))),
                Op::Cross { a, b, .. } => {
                    s(a).zip(s(b)).map(|(x, y)| FoldVal::R(Rel::cross(n, x, y)))
                }
                Op::IdOn { src, .. } => s(src).map(|x| FoldVal::R(Rel::id_on(n, x))),
                Op::Plus { src, .. } => r(src).map(|x| FoldVal::R(x.plus())),
                Op::Star { src, .. } => r(src).map(|x| FoldVal::R(x.star())),
                Op::Opt { src, .. } => r(src).map(|x| FoldVal::R(x.opt())),
                Op::Inverse { src, .. } => r(src).map(|x| FoldVal::R(x.inverse())),
                Op::ComplementR { src, .. } => r(src).map(|x| FoldVal::R(x.complement())),
                Op::ComplementS { src, .. } => s(src).map(|x| FoldVal::S(x.complement(n))),
                Op::Domain { src, .. } => r(src).map(|x| FoldVal::S(x.domain())),
                Op::Range { src, .. } => r(src).map(|x| FoldVal::S(x.range())),
                Op::Weaklift { a, b, .. } => {
                    r(a).zip(r(b)).map(|(x, y)| FoldVal::R(weaklift(&x, &y)))
                }
                Op::Stronglift { a, b, .. } => {
                    r(a).zip(r(b)).map(|(x, y)| FoldVal::R(stronglift(&x, &y)))
                }
                // `fencerel` reads `po`; `LoadR`/`LoadS` of anything
                // else is execution-dependent; const ops are already
                // folded; fixpoint scaffolding never folds.
                _ => None,
            }
        };
        match folded {
            Some(FoldVal::R(val)) => {
                let Some(AnyReg::R(d)) = op.def() else {
                    unreachable!("relation folds define relation registers")
                };
                let idx = intern_rel(&mut rel_consts, val);
                c.ops[i] = Op::ConstR { dst: RReg(d), idx };
                kr[d as usize] = Some(val);
            }
            Some(FoldVal::S(val)) => {
                let Some(AnyReg::S(d)) = op.def() else {
                    unreachable!("set folds define set registers")
                };
                let idx = intern_set(&mut set_consts, val);
                c.ops[i] = Op::ConstS { dst: SReg(d), idx };
                ks[d as usize] = Some(val);
            }
            None => match op.def() {
                Some(AnyReg::R(x)) => kr[x as usize] = None,
                Some(AnyReg::S(x)) => ks[x as usize] = None,
                None => {
                    if let Op::FixUpdate { bound, .. } = op {
                        kr[bound.0 as usize] = None;
                    }
                }
            },
        }
    }
    c.rel_consts = rel_consts;
    c.set_consts = set_consts;
    c
}

fn intern_rel(pool: &mut Vec<Rel>, val: Rel) -> u16 {
    if let Some(i) = pool.iter().position(|r| *r == val) {
        return i as u16;
    }
    pool.push(val);
    (pool.len() - 1) as u16
}

fn intern_set(pool: &mut Vec<EventSet>, val: EventSet) -> u16 {
    if let Some(i) = pool.iter().position(|s| *s == val) {
        return i as u16;
    }
    pool.push(val);
    (pool.len() - 1) as u16
}

/// Drop pool constants orphaned by post-fold DCE (folded chains leave
/// only their final constants referenced) and renumber the survivors.
fn prune_pools(mut c: Chunk) -> Chunk {
    let mut used_r = vec![false; c.rel_consts.len()];
    let mut used_s = vec![false; c.set_consts.len()];
    for op in &c.ops {
        match op {
            Op::ConstR { idx, .. } => used_r[*idx as usize] = true,
            Op::ConstS { idx, .. } => used_s[*idx as usize] = true,
            _ => {}
        }
    }
    let mut map_r = vec![0u16; c.rel_consts.len()];
    let mut rel_consts = Vec::new();
    for (i, used) in used_r.iter().enumerate() {
        if *used {
            map_r[i] = rel_consts.len() as u16;
            rel_consts.push(c.rel_consts[i]);
        }
    }
    let mut map_s = vec![0u16; c.set_consts.len()];
    let mut set_consts = Vec::new();
    for (i, used) in used_s.iter().enumerate() {
        if *used {
            map_s[i] = set_consts.len() as u16;
            set_consts.push(c.set_consts[i]);
        }
    }
    for op in &mut c.ops {
        match op {
            Op::ConstR { idx, .. } => *idx = map_r[*idx as usize],
            Op::ConstS { idx, .. } => *idx = map_s[*idx as usize],
            _ => {}
        }
    }
    c.rel_consts = rel_consts;
    c.set_consts = set_consts;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, lower};
    use crate::parser::parse;

    fn compiled(src: &str) -> Chunk {
        compile(&parse(src).expect("parses")).expect("compiles")
    }

    fn count(c: &Chunk, pred: impl Fn(&Op) -> bool) -> usize {
        c.ops.iter().filter(|op| pred(op)).count()
    }

    #[test]
    fn dead_definitions_are_eliminated() {
        let c = compiled("let dead = po ; rf\nacyclic po | com as Order\n");
        assert_eq!(
            count(&c, |op| matches!(op, Op::SeqR { .. })),
            0,
            "{}",
            c.disassemble()
        );
    }

    #[test]
    fn common_subexpressions_are_shared() {
        // `(po ; rf)` appears twice; the optimised chunk computes it once.
        let naive = lower(&parse("acyclic (po ; rf) | ((po ; rf) ; co) as X\n").unwrap()).unwrap();
        let c = compiled("acyclic (po ; rf) | ((po ; rf) ; co) as X\n");
        assert_eq!(count(&naive, |op| matches!(op, Op::SeqR { .. })), 3);
        assert_eq!(
            count(&c, |op| matches!(op, Op::SeqR { .. })),
            2,
            "{}",
            c.disassemble()
        );
    }

    #[test]
    fn analysis_compounds_hoist_to_builtin_loads() {
        use RelBuiltin::*;
        for (src, builtin) in [
            ("acyclic po & loc as X\n", PoLoc),
            ("acyclic poloc | com as X\n", Coherence),
            ("acyclic rf | co | fr as X\n", Com),
            ("acyclic addr | data as X\n", Dp),
            ("empty rmw & (fre ; coe) as X\n", RmwIsol),
            ("acyclic stronglift(com, stxn) as X\n", StrongIsol),
            ("acyclic stronglift(com, stxnat) as X\n", StrongIsolAtomic),
            ("acyclic weaklift(com, stxn) as X\n", WeakIsol),
            ("empty rmw & tfence+ as X\n", TxnCancelsRmw),
            ("acyclic ~sthd as X\n", Ext),
        ] {
            let c = compiled(src);
            assert!(
                c.ops
                    .iter()
                    .any(|op| matches!(op, Op::LoadR { b, .. } if *b == builtin)),
                "{src} should hoist to {builtin:?}:\n{}",
                c.disassemble()
            );
            // The hoisted load feeds the check directly.
            assert_eq!(c.ops.len(), 2, "{src}:\n{}", c.disassemble());
        }
    }

    #[test]
    fn registers_are_compacted() {
        // Five operands but short live ranges: the bank stays small.
        let c = compiled("acyclic ((po ; rf) ; co) ; ((fr ; rfe) ; coe) as X\n");
        assert!(
            c.rel_regs <= 3,
            "rel bank {} too wide:\n{}",
            c.rel_regs,
            c.disassemble()
        );
    }

    #[test]
    fn specialise_folds_count_constants() {
        let c = compiled("acyclic (id | (id ; id)) | po as X\n");
        let t = specialise(&c, 4);
        assert_eq!(t.events, Some(4));
        assert!(
            t.ops.iter().any(|op| matches!(op, Op::ConstR { .. })),
            "{}",
            t.disassemble()
        );
        assert_eq!(
            count(&t, |op| matches!(op, Op::SeqR { .. })),
            0,
            "{}",
            t.disassemble()
        );
        // Only the surviving constant stays pooled.
        assert_eq!(t.rel_consts.len(), 1, "{}", t.disassemble());
        assert_eq!(t.rel_consts[0], txmm_core::Rel::id(4));
    }

    #[test]
    fn fixpoint_groups_survive_optimisation() {
        let c = compiled("let rec hb = (po | rf) | (hb ; hb)\nacyclic hb as X\n");
        assert_eq!(c.fix_groups.len(), 1, "{}", c.disassemble());
        assert_eq!(count(&c, |op| matches!(op, Op::FixUpdate { .. })), 1);
        assert_eq!(count(&c, |op| matches!(op, Op::FixLoop { .. })), 1);
        let (start, end) = c.fix_groups[0];
        assert!(matches!(c.ops[end as usize - 1], Op::FixLoop { start: s } if s == start));
    }

    #[test]
    fn dead_fixpoint_groups_are_dropped() {
        let c = compiled("let rec dead = po | (dead ; dead)\nacyclic com as X\n");
        assert_eq!(c.fix_groups.len(), 0, "{}", c.disassemble());
        assert_eq!(count(&c, |op| matches!(op, Op::FixUpdate { .. })), 0);
    }

    #[test]
    fn shipped_models_shrink_under_optimisation() {
        for (name, src) in crate::models::SOURCES {
            let file = parse(src).expect(name);
            let naive = lower(&file).expect(name);
            let opt = compile(&file).expect(name);
            assert!(
                opt.len() <= naive.len(),
                "{name}: optimised {} > naive {}",
                opt.len(),
                naive.len()
            );
            let checks = count(&naive, |op| matches!(op, Op::Check { .. }));
            assert_eq!(
                count(&opt, |op| matches!(op, Op::Check { .. })),
                checks,
                "{name}"
            );
        }
    }
}
