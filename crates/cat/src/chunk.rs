//! Flat bytecode for compiled `.cat` models.
//!
//! A [`Chunk`] is a register-machine program over two register banks —
//! relations ([`RReg`]) and event sets ([`SReg`]) — produced by
//! [`crate::compile`] and executed by [`crate::vm::Vm`]. Every name is
//! resolved at compile time: builtin references become [`Op::LoadR`] /
//! [`Op::LoadS`] against the shared `ExecutionAnalysis`, `let` bindings
//! become register aliases, and `let rec` groups become fixpoint loops
//! ([`Op::FixUpdate`] + [`Op::FixLoop`]) with a convergence test over
//! the bound registers. Checks carry their `as Name` labels as indices
//! into the chunk's leaked name table.
//!
//! Chunks come in two flavours: the *generic* program a model compiles
//! to once, and per-event-count *tiers* ([`crate::opt::specialise`])
//! where every subexpression built only from event-count constants
//! (`id`, `unv`, `_`, `emptyset`) has been folded into the constant
//! pools.

use txmm_core::{EventSet, ExecutionAnalysis, Fence, Rel};

use crate::parser::CheckKind;

/// A relation register (index into the VM's `Rel` bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RReg(pub u16);

/// An event-set register (index into the VM's `EventSet` bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SReg(pub u16);

/// A builtin event set, resolved at compile time from its source name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetBuiltin {
    /// `R`.
    Reads,
    /// `W`.
    Writes,
    /// `M`.
    Accesses,
    /// `F`.
    Fences,
    /// `A` / `Acq`.
    Acq,
    /// `L` / `Rel`.
    RelEvents,
    /// `SC`.
    ScEvents,
    /// `Ato`.
    Ato,
    /// `emptyset`.
    Empty,
    /// Fence-event sets (`MFENCE`, `SYNC`, `DMB`, ...).
    FenceEvents(Fence),
    /// `RlxW`.
    RlxW,
    /// `RlxR`.
    RlxR,
    /// `FSC`.
    Fsc,
    /// `AcqRead`.
    AcqRead,
    /// `RelWrite`.
    RelWrite,
}

impl SetBuiltin {
    /// Resolve a source name; mirrors the interpreter's builtin table.
    pub fn lookup(name: &str) -> Option<SetBuiltin> {
        use SetBuiltin::*;
        Some(match name {
            "R" => Reads,
            "W" => Writes,
            "M" => Accesses,
            "F" => Fences,
            "A" | "Acq" => Acq,
            "L" | "Rel" => RelEvents,
            "SC" => ScEvents,
            "Ato" => Ato,
            "emptyset" => Empty,
            "ISB" => FenceEvents(Fence::Isb),
            "MFENCE" => FenceEvents(Fence::MFence),
            "SYNC" => FenceEvents(Fence::Sync),
            "LWSYNC" => FenceEvents(Fence::Lwsync),
            "ISYNC" => FenceEvents(Fence::Isync),
            "DMB" => FenceEvents(Fence::Dmb),
            "DMBLD" => FenceEvents(Fence::DmbLd),
            "DMBST" => FenceEvents(Fence::DmbSt),
            "RlxW" => RlxW,
            "RlxR" => RlxR,
            "FSC" => Fsc,
            "AcqRead" => AcqRead,
            "RelWrite" => RelWrite,
            _ => return None,
        })
    }

    /// The set this builtin denotes over one execution's analysis.
    pub fn eval(self, a: &ExecutionAnalysis<'_>) -> EventSet {
        use SetBuiltin::*;
        let x = a.exec();
        match self {
            Reads => a.reads(),
            Writes => a.writes(),
            Accesses => x.accesses(),
            Fences => a.fences(),
            Acq => a.acq(),
            RelEvents => a.rel_events(),
            ScEvents => a.sc_events(),
            Ato => a.ato(),
            Empty => EventSet::EMPTY,
            FenceEvents(f) => x.fence_events(f),
            RlxW => a.writes().inter(a.ato()),
            RlxR => a.reads().inter(a.ato()),
            Fsc => a.sc_events().inter(a.fences()),
            AcqRead => a.acq().inter(a.reads()),
            RelWrite => x.with_attr(txmm_core::Attrs::REL).inter(a.writes()),
        }
    }
}

/// A builtin relation, resolved at compile time from its source name.
///
/// The tail of the enum (from [`RelBuiltin::Dp`] on) is optimiser
/// vocabulary only: relations the shared `ExecutionAnalysis` caches
/// per execution but which have no `.cat` name. The CSE/hoisting pass
/// rewrites the corresponding compound expressions (`addr | data`,
/// `poloc | com`, `stronglift(com, stxn)`, ...) into single loads of
/// these, so every model sharing an analysis shares the work too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelBuiltin {
    /// `id` (folded per tier: depends only on the event count).
    Id,
    /// `unv` (folded per tier).
    Unv,
    /// `po`.
    Po,
    /// `addr`.
    Addr,
    /// `ctrl`.
    Ctrl,
    /// `data`.
    Data,
    /// `rmw`.
    Rmw,
    /// `rf`.
    Rf,
    /// `co`.
    Co,
    /// `fr`.
    Fr,
    /// `com`.
    Com,
    /// `rfe`.
    Rfe,
    /// `rfi`.
    Rfi,
    /// `coe`.
    Coe,
    /// `coi`.
    Coi,
    /// `fre`.
    Fre,
    /// `fri`.
    Fri,
    /// `come`.
    Come,
    /// `sloc` / `loc`.
    Sloc,
    /// `sthd` / `int`.
    Sthd,
    /// `ext`.
    Ext,
    /// `poloc`.
    PoLoc,
    /// `stxn`.
    Stxn,
    /// `stxnat`.
    Stxnat,
    /// `tfence`.
    Tfence,
    /// `scr`.
    Scr,
    /// `scrt`.
    Scrt,
    /// Builtin fence-order relations (`mfence`, `sync`, `dmb`, ...).
    FenceOrder(Fence),
    /// Optimiser-only: `addr | data` (analysis `dp`).
    Dp,
    /// Optimiser-only: `tfence+` (analysis `tfence_plus`).
    TfencePlus,
    /// Optimiser-only: `poloc | com` (analysis `coherence`).
    Coherence,
    /// Optimiser-only: `rmw & (fre ; coe)` (analysis `rmw_isol`).
    RmwIsol,
    /// Optimiser-only: `weaklift(com, stxn)` (analysis `weak_isol`).
    WeakIsol,
    /// Optimiser-only: `stronglift(com, stxn)` (analysis `strong_isol`).
    StrongIsol,
    /// Optimiser-only: `stronglift(com, stxnat)`.
    StrongIsolAtomic,
    /// Optimiser-only: `rmw & tfence+` (analysis `txn_cancels_rmw`).
    TxnCancelsRmw,
}

impl RelBuiltin {
    /// Resolve a source name; mirrors the interpreter's builtin table.
    /// Optimiser-only builtins are deliberately not source-addressable.
    pub fn lookup(name: &str) -> Option<RelBuiltin> {
        use RelBuiltin::*;
        Some(match name {
            "id" => Id,
            "unv" => Unv,
            "po" => Po,
            "addr" => Addr,
            "ctrl" => Ctrl,
            "data" => Data,
            "rmw" => Rmw,
            "rf" => Rf,
            "co" => Co,
            "fr" => Fr,
            "com" => Com,
            "rfe" => Rfe,
            "rfi" => Rfi,
            "coe" => Coe,
            "coi" => Coi,
            "fre" => Fre,
            "fri" => Fri,
            "come" => Come,
            "sloc" | "loc" => Sloc,
            "sthd" | "int" => Sthd,
            "ext" => Ext,
            "poloc" => PoLoc,
            "stxn" => Stxn,
            "stxnat" => Stxnat,
            "tfence" => Tfence,
            "scr" => Scr,
            "scrt" => Scrt,
            "mfence" => FenceOrder(Fence::MFence),
            "sync" => FenceOrder(Fence::Sync),
            "lwsync" => FenceOrder(Fence::Lwsync),
            "isync" => FenceOrder(Fence::Isync),
            "dmb" => FenceOrder(Fence::Dmb),
            "dmbld" => FenceOrder(Fence::DmbLd),
            "dmbst" => FenceOrder(Fence::DmbSt),
            "isb" => FenceOrder(Fence::Isb),
            _ => return None,
        })
    }

    /// The relation this builtin denotes over one execution's analysis.
    pub fn eval(self, a: &ExecutionAnalysis<'_>) -> Rel {
        use RelBuiltin::*;
        let x = a.exec();
        match self {
            Id => Rel::id(a.len()),
            Unv => Rel::full(a.len()),
            Po => *x.po(),
            Addr => *x.addr(),
            Ctrl => *x.ctrl(),
            Data => *x.data(),
            Rmw => *x.rmw(),
            Rf => *x.rf(),
            Co => *x.co(),
            Fr => *a.fr(),
            Com => *a.com(),
            Rfe => *a.rfe(),
            Rfi => *a.rfi(),
            Coe => *a.coe(),
            Coi => *a.coi(),
            Fre => *a.fre(),
            Fri => *a.fri(),
            Come => *a.come(),
            Sloc => *a.sloc(),
            Sthd => *a.sthd(),
            Ext => a.sthd().complement(),
            PoLoc => *a.po_loc(),
            Stxn => *a.stxn(),
            Stxnat => *a.stxnat(),
            Tfence => *a.tfence(),
            Scr => *a.scr(),
            Scrt => *a.scrt(),
            FenceOrder(f) => *a.fence_rel(f),
            Dp => *a.dp(),
            TfencePlus => *a.tfence_plus(),
            Coherence => *a.coherence(),
            RmwIsol => *a.rmw_isol(),
            WeakIsol => *a.weak_isol(),
            StrongIsol => *a.strong_isol(),
            StrongIsolAtomic => *a.strong_isol_atomic(),
            TxnCancelsRmw => *a.txn_cancels_rmw(),
        }
    }

    /// A borrowed view of the builtin when the analysis caches it —
    /// the VM row-copies these instead of materialising a full `Rel`.
    /// `None` for the computed ones ([`RelBuiltin::eval`] covers all).
    pub fn eval_ref<'r>(self, a: &'r ExecutionAnalysis<'_>) -> Option<&'r Rel> {
        use RelBuiltin::*;
        let x = a.exec();
        Some(match self {
            Id | Unv | Ext => return None,
            Po => x.po(),
            Addr => x.addr(),
            Ctrl => x.ctrl(),
            Data => x.data(),
            Rmw => x.rmw(),
            Rf => x.rf(),
            Co => x.co(),
            Fr => a.fr(),
            Com => a.com(),
            Rfe => a.rfe(),
            Rfi => a.rfi(),
            Coe => a.coe(),
            Coi => a.coi(),
            Fre => a.fre(),
            Fri => a.fri(),
            Come => a.come(),
            Sloc => a.sloc(),
            Sthd => a.sthd(),
            PoLoc => a.po_loc(),
            Stxn => a.stxn(),
            Stxnat => a.stxnat(),
            Tfence => a.tfence(),
            Scr => a.scr(),
            Scrt => a.scrt(),
            FenceOrder(f) => a.fence_rel(f),
            Dp => a.dp(),
            TfencePlus => a.tfence_plus(),
            Coherence => a.coherence(),
            RmwIsol => a.rmw_isol(),
            WeakIsol => a.weak_isol(),
            StrongIsol => a.strong_isol(),
            StrongIsolAtomic => a.strong_isol_atomic(),
            TxnCancelsRmw => a.txn_cancels_rmw(),
        })
    }

    /// Does the relation depend only on the event count, not the
    /// execution? These are the fold candidates of tier specialisation.
    pub fn is_count_constant(self) -> bool {
        matches!(self, RelBuiltin::Id | RelBuiltin::Unv)
    }
}

/// One register-machine instruction. Binary set/relation operators read
/// two registers and write a third; fixpoint groups bracket their body
/// with [`Op::FixUpdate`] convergence tests and a trailing
/// [`Op::FixLoop`] back-jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `dst ← builtin relation`.
    LoadR { dst: RReg, b: RelBuiltin },
    /// `dst ← builtin set`.
    LoadS { dst: SReg, b: SetBuiltin },
    /// `dst ← rel_consts[idx]` (tier-folded constant).
    ConstR { dst: RReg, idx: u16 },
    /// `dst ← set_consts[idx]` (tier-folded constant).
    ConstS { dst: SReg, idx: u16 },
    /// `dst ← a ∪ b` (relations).
    UnionR { dst: RReg, a: RReg, b: RReg },
    /// `dst ← a ∩ b` (relations).
    InterR { dst: RReg, a: RReg, b: RReg },
    /// `dst ← a \ b` (relations).
    DiffR { dst: RReg, a: RReg, b: RReg },
    /// `dst ← a ; b` (relational composition).
    SeqR { dst: RReg, a: RReg, b: RReg },
    /// `dst ← a ∪ b` (sets).
    UnionS { dst: SReg, a: SReg, b: SReg },
    /// `dst ← a ∩ b` (sets).
    InterS { dst: SReg, a: SReg, b: SReg },
    /// `dst ← a \ b` (sets).
    DiffS { dst: SReg, a: SReg, b: SReg },
    /// `dst ← a × b` (set cross product).
    Cross { dst: RReg, a: SReg, b: SReg },
    /// `dst ← [src]` (identity on a set; also the set→relation
    /// coercion the interpreter applies in relation positions).
    IdOn { dst: RReg, src: SReg },
    /// `dst ← src⁺` (transitive closure).
    Plus { dst: RReg, src: RReg },
    /// `dst ← src*`.
    Star { dst: RReg, src: RReg },
    /// `dst ← src?`.
    Opt { dst: RReg, src: RReg },
    /// `dst ← src⁻¹` (transpose).
    Inverse { dst: RReg, src: RReg },
    /// `dst ← ¬src` (relation complement).
    ComplementR { dst: RReg, src: RReg },
    /// `dst ← ¬src` (set complement over the event universe).
    ComplementS { dst: SReg, src: SReg },
    /// `dst ← domain(src)`.
    Domain { dst: SReg, src: RReg },
    /// `dst ← range(src)`.
    Range { dst: SReg, src: RReg },
    /// `dst ← weaklift(a, b)`.
    Weaklift { dst: RReg, a: RReg, b: RReg },
    /// `dst ← stronglift(a, b)`.
    Stronglift { dst: RReg, a: RReg, b: RReg },
    /// `dst ← po ; [src] ; po` (herd's `fencerel`).
    Fencerel { dst: RReg, src: SReg },
    /// `dst ← _` (the event universe; folded per tier).
    Universe { dst: SReg },
    /// `dst ← ∅` — the least-fixpoint seed of a `let rec` binding.
    EmptyR { dst: RReg },
    /// Fixpoint convergence step: `changed |= bound ≠ src; bound ← src`.
    FixUpdate { bound: RReg, src: RReg },
    /// If any [`Op::FixUpdate`] since the last test changed a register,
    /// clear the flag and jump back to instruction `start`.
    FixLoop { start: u32 },
    /// Run a check over `src` and record `names[name]` on failure.
    Check {
        kind: CheckKind,
        src: RReg,
        name: u16,
    },
}

/// Either bank's register, for the generic def/use walks the optimiser
/// passes share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AnyReg {
    R(u16),
    S(u16),
}

impl Op {
    /// The register this op defines, if any. [`Op::FixUpdate`] both
    /// reads and writes its bound register; passes treat it separately.
    pub(crate) fn def(&self) -> Option<AnyReg> {
        use Op::*;
        Some(match *self {
            LoadR { dst, .. }
            | ConstR { dst, .. }
            | UnionR { dst, .. }
            | InterR { dst, .. }
            | DiffR { dst, .. }
            | SeqR { dst, .. }
            | Cross { dst, .. }
            | IdOn { dst, .. }
            | Plus { dst, .. }
            | Star { dst, .. }
            | Opt { dst, .. }
            | Inverse { dst, .. }
            | ComplementR { dst, .. }
            | Weaklift { dst, .. }
            | Stronglift { dst, .. }
            | Fencerel { dst, .. }
            | EmptyR { dst } => AnyReg::R(dst.0),
            LoadS { dst, .. }
            | ConstS { dst, .. }
            | UnionS { dst, .. }
            | InterS { dst, .. }
            | DiffS { dst, .. }
            | ComplementS { dst, .. }
            | Domain { dst, .. }
            | Range { dst, .. }
            | Universe { dst } => AnyReg::S(dst.0),
            FixUpdate { .. } | FixLoop { .. } | Check { .. } => return None,
        })
    }

    /// Visit every register this op reads.
    pub(crate) fn uses(&self, f: &mut impl FnMut(AnyReg)) {
        use Op::*;
        match *self {
            UnionR { a, b, .. }
            | InterR { a, b, .. }
            | DiffR { a, b, .. }
            | SeqR { a, b, .. }
            | Weaklift { a, b, .. }
            | Stronglift { a, b, .. } => {
                f(AnyReg::R(a.0));
                f(AnyReg::R(b.0));
            }
            UnionS { a, b, .. } | InterS { a, b, .. } | DiffS { a, b, .. } | Cross { a, b, .. } => {
                f(AnyReg::S(a.0));
                f(AnyReg::S(b.0));
            }
            Plus { src, .. }
            | Star { src, .. }
            | Opt { src, .. }
            | Inverse { src, .. }
            | ComplementR { src, .. } => f(AnyReg::R(src.0)),
            IdOn { src, .. } | Fencerel { src, .. } | ComplementS { src, .. } => {
                f(AnyReg::S(src.0))
            }
            Domain { src, .. } | Range { src, .. } => f(AnyReg::R(src.0)),
            Check { src, .. } => f(AnyReg::R(src.0)),
            FixUpdate { bound, src } => {
                f(AnyReg::R(bound.0));
                f(AnyReg::R(src.0));
            }
            LoadR { .. }
            | LoadS { .. }
            | ConstR { .. }
            | ConstS { .. }
            | Universe { .. }
            | EmptyR { .. }
            | FixLoop { .. } => {}
        }
    }

    /// Rewrite only the registers the op *reads* through the two bank
    /// maps. Used by CSE substitution, which must leave defs alone: a
    /// deduplicated op keeps its (now dead) destination for DCE to
    /// collect. [`Op::FixUpdate`]'s bound register is the mutated
    /// accumulator, never a substitutable value, so only `src` moves.
    pub(crate) fn rewrite_uses(&mut self, r: &impl Fn(u16) -> u16, s: &impl Fn(u16) -> u16) {
        use Op::*;
        let rr = |x: &mut RReg| x.0 = r(x.0);
        let ss = |x: &mut SReg| x.0 = s(x.0);
        match self {
            UnionR { a, b, .. }
            | InterR { a, b, .. }
            | DiffR { a, b, .. }
            | SeqR { a, b, .. }
            | Weaklift { a, b, .. }
            | Stronglift { a, b, .. } => {
                rr(a);
                rr(b);
            }
            UnionS { a, b, .. } | InterS { a, b, .. } | DiffS { a, b, .. } | Cross { a, b, .. } => {
                ss(a);
                ss(b);
            }
            Plus { src, .. }
            | Star { src, .. }
            | Opt { src, .. }
            | Inverse { src, .. }
            | ComplementR { src, .. } => rr(src),
            IdOn { src, .. } | Fencerel { src, .. } | ComplementS { src, .. } => ss(src),
            Domain { src, .. } | Range { src, .. } => rr(src),
            Check { src, .. } => rr(src),
            FixUpdate { src, .. } => rr(src),
            LoadR { .. }
            | LoadS { .. }
            | ConstR { .. }
            | ConstS { .. }
            | Universe { .. }
            | EmptyR { .. }
            | FixLoop { .. } => {}
        }
    }

    /// Rewrite every register the op mentions (defs and uses) through
    /// the two bank maps. Used by register compaction.
    pub(crate) fn rewrite_regs(&mut self, r: &impl Fn(u16) -> u16, s: &impl Fn(u16) -> u16) {
        use Op::*;
        let rr = |x: &mut RReg| x.0 = r(x.0);
        let ss = |x: &mut SReg| x.0 = s(x.0);
        match self {
            LoadR { dst, .. } | ConstR { dst, .. } | EmptyR { dst } => rr(dst),
            LoadS { dst, .. } | ConstS { dst, .. } | Universe { dst } => ss(dst),
            UnionR { dst, a, b }
            | InterR { dst, a, b }
            | DiffR { dst, a, b }
            | SeqR { dst, a, b }
            | Weaklift { dst, a, b }
            | Stronglift { dst, a, b } => {
                rr(dst);
                rr(a);
                rr(b);
            }
            UnionS { dst, a, b } | InterS { dst, a, b } | DiffS { dst, a, b } => {
                ss(dst);
                ss(a);
                ss(b);
            }
            Cross { dst, a, b } => {
                rr(dst);
                ss(a);
                ss(b);
            }
            IdOn { dst, src } | Fencerel { dst, src } => {
                rr(dst);
                ss(src);
            }
            Plus { dst, src }
            | Star { dst, src }
            | Opt { dst, src }
            | Inverse { dst, src }
            | ComplementR { dst, src } => {
                rr(dst);
                rr(src);
            }
            ComplementS { dst, src } => {
                ss(dst);
                ss(src);
            }
            Domain { dst, src } | Range { dst, src } => {
                ss(dst);
                rr(src);
            }
            FixUpdate { bound, src } => {
                rr(bound);
                rr(src);
            }
            Check { src, .. } => rr(src),
            FixLoop { .. } => {}
        }
    }
}

/// A compiled `.cat` program: flat ops over two register banks, the
/// leaked check-name table, the fixpoint-group ranges the optimiser
/// passes treat atomically, and (for specialised tiers) constant pools.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// The instruction stream, in declaration order.
    pub ops: Vec<Op>,
    /// Size of the relation register bank.
    pub rel_regs: u16,
    /// Size of the event-set register bank.
    pub set_regs: u16,
    /// Check labels (`as Name`), leaked once at compile time — the
    /// interpreter leaked one copy per check *evaluation* instead.
    pub names: Vec<&'static str>,
    /// `[start, end)` op ranges of `let rec` bodies (the trailing
    /// `FixLoop` is at `end - 1`).
    pub fix_groups: Vec<(u32, u32)>,
    /// Relation constants folded by tier specialisation.
    pub rel_consts: Vec<Rel>,
    /// Set constants folded by tier specialisation.
    pub set_consts: Vec<EventSet>,
    /// `Some(n)` once specialised to event count `n`.
    pub events: Option<usize>,
}

impl Chunk {
    /// A short opcode-per-line listing, for tests and debugging.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            let _ = writeln!(out, "{i:3}: {op:?}");
        }
        out
    }

    /// Number of instructions (the optimiser tests' fuel gauge).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}
