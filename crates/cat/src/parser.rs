//! Parser for the `.cat` subset.
//!
//! Grammar (binding tightest to loosest):
//!
//! ```text
//! model    ::= decl*
//! decl     ::= "let" "rec"? binding ("and" binding)*
//!            | ("acyclic" | "irreflexive" | "empty") expr ("as" IDENT)?
//! binding  ::= IDENT "=" expr
//! expr     ::= alt
//! alt      ::= diff ("|" diff)*
//! diff     ::= inter ("\" inter)*
//! inter    ::= seq ("&" seq)*
//! seq      ::= cross (";" cross)*
//! cross    ::= postfix ("*" postfix)*        // set cross-product
//! postfix  ::= prefix ("+" | "*" | "?" | "^-1")*
//! prefix   ::= "~" prefix | primary
//! primary  ::= IDENT | IDENT "(" expr ("," expr)* ")"
//!            | "[" expr "]" | "(" expr ")" | "_"
//! ```
//!
//! The infix/postfix `*` ambiguity resolves by lookahead: `*` followed
//! by a primary-start token is the cross product.

use crate::lexer::{lex, LexError, Token};
use std::fmt;

/// An expression of the `.cat` subset.
///
/// Name references ([`Expr::Ident`]) and operator applications
/// ([`Expr::Call`]) carry their 1-based source line, so evaluation
/// errors — the place unsupported constructs surface — can point back
/// into the user's `.cat` file.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A name (set or relation) and its source line.
    Ident(String, u32),
    /// `e1 | e2`.
    Union(Box<Expr>, Box<Expr>),
    /// `e1 & e2`.
    Inter(Box<Expr>, Box<Expr>),
    /// `e1 \ e2`.
    Diff(Box<Expr>, Box<Expr>),
    /// `e1 ; e2`.
    Seq(Box<Expr>, Box<Expr>),
    /// `e1 * e2` (set cross product).
    Cross(Box<Expr>, Box<Expr>),
    /// `e+`.
    Plus(Box<Expr>),
    /// `e*`.
    Star(Box<Expr>),
    /// `e?`.
    Opt(Box<Expr>),
    /// `e^-1`.
    Inverse(Box<Expr>),
    /// `~e`.
    Complement(Box<Expr>),
    /// `[e]`.
    IdOn(Box<Expr>),
    /// `_`.
    Universe,
    /// `f(e1, ..., en)` and its source line.
    Call(String, Vec<Expr>, u32),
}

/// What a check asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// `acyclic e`.
    Acyclic,
    /// `irreflexive e`.
    Irreflexive,
    /// `empty e`.
    Empty,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `let x = e` (or a `let rec` group).
    Let {
        recursive: bool,
        bindings: Vec<(String, Expr)>,
    },
    /// A consistency check.
    Check {
        kind: CheckKind,
        expr: Expr,
        name: String,
    },
}

/// A parsed model.
#[derive(Debug, Clone, PartialEq)]
pub struct CatFile {
    /// Declarations in order.
    pub decls: Vec<Decl>,
}

/// A parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {}", self.message, self.line)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Herd-language declaration keywords outside our subset; recognised so
/// the error can name the construct rather than calling it garbage.
const UNSUPPORTED_DECLS: &[&str] = &[
    "include",
    "procedure",
    "call",
    "flag",
    "show",
    "unshow",
    "with",
    "forall",
    "enum",
    "instructions",
    "deadness",
];

struct Parser {
    tokens: Vec<(Token, u32)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    /// The line of the current token (or of the last one at EOF).
    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|&(_, l)| l)
            .unwrap_or(1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        let line = self.line();
        match self.next() {
            Some(got) if got == *t => Ok(()),
            got => Err(ParseError {
                line,
                message: format!("expected {t}, got {got:?}"),
            }),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            got => Err(ParseError {
                line,
                message: format!("expected identifier, got {got:?}"),
            }),
        }
    }

    fn model(&mut self) -> Result<CatFile, ParseError> {
        let mut decls = Vec::new();
        let mut anon = 0usize;
        while let Some(t) = self.peek() {
            match t {
                Token::Let => {
                    self.next();
                    let recursive = matches!(self.peek(), Some(Token::Rec));
                    if recursive {
                        self.next();
                    }
                    let mut bindings = vec![self.binding()?];
                    while matches!(self.peek(), Some(Token::And)) {
                        self.next();
                        bindings.push(self.binding()?);
                    }
                    decls.push(Decl::Let {
                        recursive,
                        bindings,
                    });
                }
                Token::Acyclic | Token::Irreflexive | Token::Empty => {
                    let kind = match self.next() {
                        Some(Token::Acyclic) => CheckKind::Acyclic,
                        Some(Token::Irreflexive) => CheckKind::Irreflexive,
                        _ => CheckKind::Empty,
                    };
                    let expr = self.expr()?;
                    let name = if matches!(self.peek(), Some(Token::As)) {
                        self.next();
                        self.ident()?
                    } else {
                        anon += 1;
                        format!("check{anon}")
                    };
                    decls.push(Decl::Check { kind, expr, name });
                }
                Token::Ident(w) if UNSUPPORTED_DECLS.contains(&w.as_str()) => {
                    return self.err(format!("unsupported declaration '{w}'"));
                }
                other => {
                    let msg = format!("unexpected token {other}");
                    return self.err(msg);
                }
            }
        }
        Ok(CatFile { decls })
    }

    fn binding(&mut self) -> Result<(String, Expr), ParseError> {
        let name = self.ident()?;
        self.expect(&Token::Eq)?;
        let e = self.expr()?;
        Ok((name, e))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.alt()
    }

    fn alt(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.diff()?;
        while matches!(self.peek(), Some(Token::Bar)) {
            self.next();
            e = Expr::Union(Box::new(e), Box::new(self.diff()?));
        }
        Ok(e)
    }

    fn diff(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.inter()?;
        while matches!(self.peek(), Some(Token::Backslash)) {
            self.next();
            e = Expr::Diff(Box::new(e), Box::new(self.inter()?));
        }
        Ok(e)
    }

    fn inter(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.seq()?;
        while matches!(self.peek(), Some(Token::Amp)) {
            self.next();
            e = Expr::Inter(Box::new(e), Box::new(self.seq()?));
        }
        Ok(e)
    }

    fn seq(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.cross()?;
        while matches!(self.peek(), Some(Token::Semi)) {
            self.next();
            e = Expr::Seq(Box::new(e), Box::new(self.cross()?));
        }
        Ok(e)
    }

    fn starts_primary(t: Option<&Token>) -> bool {
        matches!(
            t,
            Some(Token::Ident(_))
                | Some(Token::LBracket)
                | Some(Token::LParen)
                | Some(Token::Tilde)
                | Some(Token::Underscore)
        )
    }

    fn cross(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.postfix()?;
        loop {
            if matches!(self.peek(), Some(Token::Star))
                && Self::starts_primary(self.tokens.get(self.pos + 1).map(|(t, _)| t))
            {
                self.next();
                e = Expr::Cross(Box::new(e), Box::new(self.postfix()?));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.prefix()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.next();
                    e = Expr::Plus(Box::new(e));
                }
                Some(Token::Star)
                    if !Self::starts_primary(self.tokens.get(self.pos + 1).map(|(t, _)| t)) =>
                {
                    self.next();
                    e = Expr::Star(Box::new(e));
                }
                Some(Token::Question) => {
                    self.next();
                    e = Expr::Opt(Box::new(e));
                }
                Some(Token::Inverse) => {
                    self.next();
                    e = Expr::Inverse(Box::new(e));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn prefix(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(Token::Tilde)) {
            self.next();
            return Ok(Expr::Complement(Box::new(self.prefix()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.next() {
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.next();
                    let mut args = vec![self.expr()?];
                    while matches!(self.peek(), Some(Token::Comma)) {
                        self.next();
                        args.push(self.expr()?);
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Call(name, args, line))
                } else {
                    Ok(Expr::Ident(name, line))
                }
            }
            Some(Token::LBracket) => {
                let e = self.expr()?;
                self.expect(&Token::RBracket)?;
                Ok(Expr::IdOn(Box::new(e)))
            }
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Underscore) => Ok(Expr::Universe),
            Some(Token::Str(_)) => Err(ParseError {
                line,
                message: "unsupported construct: string literal in expression".into(),
            }),
            got => Err(ParseError {
                line,
                message: format!("expected expression, got {got:?}"),
            }),
        }
    }
}

/// Parse `.cat` source into a model file.
pub fn parse(src: &str) -> Result<CatFile, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.model()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        // `a | b ; c` parses as `a | (b ; c)`.
        let f = parse("let x = a | b ; c").unwrap();
        let Decl::Let { bindings, .. } = &f.decls[0] else {
            panic!()
        };
        match &bindings[0].1 {
            Expr::Union(l, r) => {
                assert_eq!(**l, Expr::Ident("a".into(), 1));
                assert!(matches!(**r, Expr::Seq(_, _)));
            }
            e => panic!("{e:?}"),
        }
    }

    #[test]
    fn cross_vs_star() {
        let f = parse("let x = W * W let y = po*").unwrap();
        let Decl::Let { bindings, .. } = &f.decls[0] else {
            panic!()
        };
        assert!(matches!(bindings[0].1, Expr::Cross(_, _)));
        let Decl::Let { bindings, .. } = &f.decls[1] else {
            panic!()
        };
        assert!(matches!(bindings[0].1, Expr::Star(_)));
    }

    #[test]
    fn checks() {
        let f = parse("acyclic po | rf as Order irreflexive fr empty rmw as R").unwrap();
        assert_eq!(f.decls.len(), 3);
        assert!(matches!(
            &f.decls[0],
            Decl::Check { kind: CheckKind::Acyclic, name, .. } if name == "Order"
        ));
        assert!(matches!(
            &f.decls[1],
            Decl::Check { kind: CheckKind::Irreflexive, name, .. } if name == "check1"
        ));
    }

    #[test]
    fn let_rec_group() {
        let f = parse("let rec ii = a | ci and ci = b | ii ; ii").unwrap();
        let Decl::Let {
            recursive,
            bindings,
        } = &f.decls[0]
        else {
            panic!()
        };
        assert!(recursive);
        assert_eq!(bindings.len(), 2);
    }

    #[test]
    fn calls_and_brackets() {
        let f = parse("let x = stronglift(com, stxn) let y = [W] ; po ; [R]").unwrap();
        let Decl::Let { bindings, .. } = &f.decls[0] else {
            panic!()
        };
        assert!(
            matches!(&bindings[0].1, Expr::Call(n, args, _) if n == "stronglift" && args.len() == 2)
        );
    }

    #[test]
    fn unsupported_declarations_named_with_line() {
        let e =
            parse("let hb = po | com\nacyclic hb as Order\ninclude \"x86fences.cat\"").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.to_string(), "unsupported declaration 'include' at line 3");
        let e = parse("procedure f(x) = x end").unwrap_err();
        assert!(e
            .to_string()
            .contains("unsupported declaration 'procedure' at line 1"));
    }

    #[test]
    fn idents_and_calls_carry_lines() {
        let f = parse("let a = po\nlet b = stronglift(com, stxn)").unwrap();
        let Decl::Let { bindings, .. } = &f.decls[0] else {
            panic!()
        };
        assert_eq!(bindings[0].1, Expr::Ident("po".into(), 1));
        let Decl::Let { bindings, .. } = &f.decls[1] else {
            panic!()
        };
        assert!(matches!(&bindings[0].1, Expr::Call(_, _, 2)));
    }

    #[test]
    fn inverse_and_complement() {
        let f = parse("let x = ~(rf^-1 ; co)").unwrap();
        let Decl::Let { bindings, .. } = &f.decls[0] else {
            panic!()
        };
        assert!(matches!(bindings[0].1, Expr::Complement(_)));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("let = po").is_err());
        assert!(parse("acyclic").is_err());
        assert!(parse("po rf").is_err());
    }
}
