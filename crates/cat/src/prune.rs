//! Conservative prune oracles extracted from compiled `.cat` programs.
//!
//! A compiled model is a straight-line bytecode program ending in
//! `acyclic`/`irreflexive`/`empty` checks. On a *partial* execution —
//! `rf`/`co` still growing, `fr` maintained explicitly (see
//! `txmm_core::incr`) — a check is a sound pruning test exactly when
//! the relation it inspects can only **grow** as the candidate is
//! extended: a cycle, reflexive pair or inhabitant found now persists
//! in every completion.
//!
//! [`prune_program`] classifies every register of the generic program
//! into a three-point lattice
//!
//! > `Fixed` (value equals the complete execution's) ⊑ `Grows`
//! > (partial value ⊑ complete value) ⊑ `Unknown`
//!
//! by an abstract interpretation of the op list: structure builtins (`po`,
//! `addr`, label sets, ...) are `Fixed`; the communication builtins
//! (`rf`, `co`, `fr` and their views) are `Grows`; monotone operators
//! (`| & ; + * ? ⁻¹`, cross, lifts-with-fixed-second-argument,
//! `fencerel`, domain/range) propagate the join of their inputs;
//! non-monotone positions (`\` or `¬` over a non-`Fixed` operand, a
//! lift whose *transaction* argument may change) poison the result to
//! `Unknown`. `let rec` bodies iterate to a join-semantics fixpoint —
//! Tarski: a least fixpoint of a monotone body is monotone in its
//! parameters. Checks over `Unknown` registers are dropped; what
//! remains (re-optimised, so dead code feeding dropped checks goes
//! too) is the oracle program.
//!
//! The transaction builtins flip with the caller's phase: while abort
//! splits / transaction classes are still being chosen
//! (`txns_known == false`), `stxn` itself may grow *and shrink*
//! derived relations, so every transaction-derived builtin is
//! `Unknown`; once the classes are fixed they are `Fixed`, and the
//! communication lifts become `Grows`.
//!
//! A model none of whose checks survive yields no oracle ([`None`]),
//! and compile errors never prune — both degrade to plain enumeration.

use std::cell::RefCell;
use std::sync::OnceLock;

use txmm_core::incr::{ComposeRule, DeltaPlan, EdgeKind, EdgeSel, Lift, Obligation, PruneOracle};
use txmm_core::{stronglift, weaklift, Execution, ExecutionAnalysis, Rel, MAX_EVENTS};
use txmm_models::Checker;

use crate::chunk::{AnyReg, Chunk, Op, RelBuiltin};
use crate::eval::CatModel;
use crate::opt;
use crate::parser::CheckKind;
use crate::vm::Vm;

/// How a register's value behaves as a partial candidate is extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Growth {
    /// Equal to its value on every completion.
    Fixed,
    /// A subset of its value on every completion.
    Grows,
    /// No monotonicity guarantee — checks over it must not prune.
    Unknown,
}

fn builtin_growth(b: RelBuiltin, txns_known: bool) -> Growth {
    use RelBuiltin::*;
    match b {
        Id | Unv | Po | Addr | Ctrl | Data | Rmw | Sloc | Sthd | Ext | PoLoc | FenceOrder(_)
        | Dp => Growth::Fixed,
        Rf | Co | Fr | Com | Rfe | Rfi | Coe | Coi | Fre | Fri | Come | Coherence | RmwIsol => {
            Growth::Grows
        }
        // Derived purely from the transaction/critical-region classes:
        // fixed once those are chosen, unusable before.
        Stxn | Stxnat | Tfence | TfencePlus | Scr | Scrt => {
            if txns_known {
                Growth::Fixed
            } else {
                Growth::Unknown
            }
        }
        // rmw ∩ tfence⁺: structure only, once txns are known.
        TxnCancelsRmw => {
            if txns_known {
                Growth::Fixed
            } else {
                Growth::Unknown
            }
        }
        // Lifts of com by a transaction equivalence: monotone in com
        // with the equivalence fixed.
        WeakIsol | StrongIsol | StrongIsolAtomic => {
            if txns_known {
                Growth::Grows
            } else {
                Growth::Unknown
            }
        }
    }
}

/// One op's effect on the register classes. Straight-line code
/// *overwrites* the destination (the compiler reuses registers, so a
/// register's class is a property of the program point, not the
/// register); inside a `let rec` body (`join == true`) classes only
/// rise, so iterating the body to fixpoint over-approximates every
/// round — sound by Tarski, since a least fixpoint of a monotone body
/// is monotone in its parameters.
fn step(
    op: &Op,
    rel: &mut [Growth],
    set: &mut [Growth],
    txns_known: bool,
    join: bool,
    changed: &mut bool,
) {
    fn write(slot: &mut Growth, g: Growth, join: bool, changed: &mut bool) {
        let next = if join { g.max(*slot) } else { g };
        if next != *slot {
            *slot = next;
            *changed = true;
        }
    }
    use Op::*;
    match *op {
        LoadR { dst, b } => write(
            &mut rel[dst.0 as usize],
            builtin_growth(b, txns_known),
            join,
            changed,
        ),
        // Event sets from labels, constants and the fixpoint seed are
        // all structure-fixed (the lattice bottom).
        LoadS { dst, .. } => write(&mut set[dst.0 as usize], Growth::Fixed, join, changed),
        ConstR { dst, .. } | EmptyR { dst } => {
            write(&mut rel[dst.0 as usize], Growth::Fixed, join, changed)
        }
        ConstS { dst, .. } | Universe { dst } => {
            write(&mut set[dst.0 as usize], Growth::Fixed, join, changed)
        }
        // Monotone in both operands.
        UnionR { dst, a, b } | InterR { dst, a, b } | SeqR { dst, a, b } => {
            let g = rel[a.0 as usize].max(rel[b.0 as usize]);
            write(&mut rel[dst.0 as usize], g, join, changed);
        }
        // a \ b is monotone in a only when b cannot change.
        DiffR { dst, a, b } => {
            let g = if rel[b.0 as usize] == Growth::Fixed {
                rel[a.0 as usize]
            } else {
                Growth::Unknown
            };
            write(&mut rel[dst.0 as usize], g, join, changed);
        }
        UnionS { dst, a, b } | InterS { dst, a, b } => {
            let g = set[a.0 as usize].max(set[b.0 as usize]);
            write(&mut set[dst.0 as usize], g, join, changed);
        }
        DiffS { dst, a, b } => {
            let g = if set[b.0 as usize] == Growth::Fixed {
                set[a.0 as usize]
            } else {
                Growth::Unknown
            };
            write(&mut set[dst.0 as usize], g, join, changed);
        }
        Cross { dst, a, b } => {
            let g = set[a.0 as usize].max(set[b.0 as usize]);
            write(&mut rel[dst.0 as usize], g, join, changed);
        }
        IdOn { dst, src } | Fencerel { dst, src } => {
            let g = set[src.0 as usize];
            write(&mut rel[dst.0 as usize], g, join, changed);
        }
        Plus { dst, src } | Star { dst, src } | Opt { dst, src } | Inverse { dst, src } => {
            let g = rel[src.0 as usize];
            write(&mut rel[dst.0 as usize], g, join, changed);
        }
        ComplementR { dst, src } => {
            let g = if rel[src.0 as usize] == Growth::Fixed {
                Growth::Fixed
            } else {
                Growth::Unknown
            };
            write(&mut rel[dst.0 as usize], g, join, changed);
        }
        ComplementS { dst, src } => {
            let g = if set[src.0 as usize] == Growth::Fixed {
                Growth::Fixed
            } else {
                Growth::Unknown
            };
            write(&mut set[dst.0 as usize], g, join, changed);
        }
        Domain { dst, src } | Range { dst, src } => {
            let g = rel[src.0 as usize];
            write(&mut set[dst.0 as usize], g, join, changed);
        }
        Weaklift { dst, a, b } | Stronglift { dst, a, b } => {
            let g = if rel[b.0 as usize] == Growth::Fixed {
                rel[a.0 as usize]
            } else {
                Growth::Unknown
            };
            write(&mut rel[dst.0 as usize], g, join, changed);
        }
        // The VM copies `bound <- src` with a convergence test; under
        // join it lubs, over-approximating whichever round last wrote.
        FixUpdate { bound, src } => {
            let g = rel[src.0 as usize];
            write(&mut rel[bound.0 as usize], g, join, changed);
        }
        FixLoop { .. } | Check { .. } => {}
    }
}

/// Abstract-interpret the program, recording each check's growth class
/// at its own program point. `let rec` bodies iterate to fixpoint with
/// join semantics; everything else runs once, in order.
fn classify(chunk: &Chunk, txns_known: bool) -> Vec<Growth> {
    let mut rel = vec![Growth::Fixed; chunk.rel_regs as usize];
    let mut set = vec![Growth::Fixed; chunk.set_regs as usize];
    let mut class = vec![Growth::Fixed; chunk.ops.len()];
    let mut i = 0;
    while i < chunk.ops.len() {
        if let Some(&(s, e)) = chunk.fix_groups.iter().find(|&&(s, _)| s as usize == i) {
            loop {
                let mut changed = false;
                for op in &chunk.ops[s as usize..e as usize] {
                    step(op, &mut rel, &mut set, txns_known, true, &mut changed);
                }
                if !changed {
                    break;
                }
            }
            i = e as usize;
        } else {
            let op = &chunk.ops[i];
            if let Op::Check { src, .. } = *op {
                class[i] = rel[src.0 as usize];
            } else {
                let mut sink = false;
                step(op, &mut rel, &mut set, txns_known, false, &mut sink);
            }
            i += 1;
        }
    }
    class
}

/// The monotone core of a compiled model: the program with every check
/// over an `Unknown` register removed (then re-optimised). `None` when
/// no check survives — the model offers nothing sound to prune on.
pub fn prune_program(generic: &Chunk, txns_known: bool) -> Option<Chunk> {
    let class = classify(generic, txns_known);
    let keep: Vec<bool> = generic
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| match op {
            Op::Check { .. } => class[i] != Growth::Unknown,
            _ => true,
        })
        .collect();
    if !generic
        .ops
        .iter()
        .zip(&keep)
        .any(|(op, &k)| k && matches!(op, Op::Check { .. }))
    {
        return None;
    }
    // Dropping ops shifts indices; remap the fixpoint ranges and
    // back-jump targets (checks never sit inside a `let rec` body, but
    // ones *before* a group still shift it).
    let removed_before =
        |idx: u32| -> u32 { keep.iter().take(idx as usize).filter(|&&k| !k).count() as u32 };
    let ops: Vec<Op> = generic
        .ops
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(op, _)| match *op {
            Op::FixLoop { start } => Op::FixLoop {
                start: start - removed_before(start),
            },
            other => other,
        })
        .collect();
    let fix_groups = generic
        .fix_groups
        .iter()
        .map(|&(s, e)| (s - removed_before(s), e - removed_before(e)))
        .collect();
    Some(opt::optimise(Chunk {
        ops,
        fix_groups,
        rel_regs: generic.rel_regs,
        set_regs: generic.set_regs,
        names: generic.names.clone(),
        rel_consts: generic.rel_consts.clone(),
        set_consts: generic.set_consts.clone(),
        events: generic.events,
    }))
}

thread_local! {
    /// A register file for oracle runs, separate from the full-check
    /// VM so the two workloads don't thrash each other's bank shapes.
    static PRUNE_VM: RefCell<Vm> = RefCell::new(Vm::new());
}

/// A [`PruneOracle`] running a model's monotone core on partial
/// executions, specialised per event count like the full pipeline.
pub struct CatPruneOracle {
    name: &'static str,
    generic: Chunk,
    tiers: Vec<OnceLock<Chunk>>,
}

impl CatPruneOracle {
    /// Derive the oracle for `model` in the given phase. `None` when
    /// the model failed to compile or keeps no monotone check —
    /// callers then simply don't prune.
    pub fn derive(
        name: &'static str,
        model: &CatModel,
        txns_known: bool,
    ) -> Option<CatPruneOracle> {
        let generic = prune_program(model.program().ok()?, txns_known)?;
        Some(CatPruneOracle {
            name,
            generic,
            tiers: (0..=MAX_EVENTS).map(|_| OnceLock::new()).collect(),
        })
    }

    /// Number of checks the monotone core retained (observability).
    pub fn checks(&self) -> usize {
        self.generic
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Check { .. }))
            .count()
    }

    fn tier(&self, n: usize) -> &Chunk {
        match self.tiers.get(n) {
            Some(slot) => slot.get_or_init(|| opt::specialise(&self.generic, n)),
            None => &self.generic,
        }
    }
}

impl PruneOracle for CatPruneOracle {
    fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool {
        // This is the fallback recompute for probes the delta plan
        // could not decide; the span makes that time visible on traces.
        let _span = txmm_obs::span!("prune.fallback");
        let chunk = self.tier(a.len());
        let mut checker = Checker::new(self.name);
        PRUNE_VM.with(|vm| vm.borrow_mut().run(chunk, a, &mut checker));
        checker.finish().is_consistent()
    }

    // One VM borrow for the whole sibling batch.
    fn viable_batch(&self, batch: &[ExecutionAnalysis<'_>]) -> u64 {
        let _span = txmm_obs::span!("prune.fallback_batch");
        PRUNE_VM.with(|vm| {
            let mut vm = vm.borrow_mut();
            let mut bits = 0u64;
            for (i, a) in batch.iter().enumerate() {
                let chunk = self.tier(a.len());
                let mut checker = Checker::new(self.name);
                vm.run(chunk, a, &mut checker);
                if checker.finish().is_consistent() {
                    bits |= 1 << i;
                }
            }
            bits
        })
    }

    // Scan the monotone core symbolically: a register holds a *union
    // of builtins/constants* (possibly strong/weak-lifted by `stxn`)
    // as long as only loads, constants and unions produced it. Every
    // check the scan can express becomes delta state — acyclicity
    // obligations with fixed seeds and per-edge feeds, the incremental
    // RMW-isolation flag, or a structure-fixed emptiness verdict. A
    // check it cannot express leaves the plan inexact, so undecided
    // probes fall back to running the core (and are counted).
    fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
        let n = x.len();
        let base = ExecutionAnalysis::with_fr(x, Rel::empty(n));
        let chunk = &self.generic;
        let mut sym: Vec<Option<Sym>> = vec![None; chunk.rel_regs as usize];
        let mut plan = DeltaPlan::fallback(x, true);
        plan.track_rmw_isol = false; // cover_check re-enables on demand
        let mut covered_all = true;
        let in_fix = |i: usize| {
            chunk
                .fix_groups
                .iter()
                .any(|&(s, e)| (s as usize..e as usize).contains(&i))
        };
        for (i, op) in chunk.ops.iter().enumerate() {
            if in_fix(i) {
                // Fixpoint bodies are beyond the symbolic domain.
                match *op {
                    Op::FixUpdate { bound, .. } => sym[bound.0 as usize] = None,
                    _ => {
                        if let Some(AnyReg::R(r)) = op.def() {
                            sym[r as usize] = None;
                        }
                    }
                }
                continue;
            }
            match *op {
                Op::LoadR { dst, b } => {
                    sym[dst.0 as usize] = Some(Sym::Parts(vec![Part::Builtin(b)]));
                }
                Op::ConstR { dst, idx } => {
                    sym[dst.0 as usize] = Some(Sym::Parts(vec![Part::Const(idx)]));
                }
                Op::EmptyR { dst } => sym[dst.0 as usize] = Some(Sym::Parts(Vec::new())),
                Op::UnionR { dst, a, b } => {
                    let joined = match (&sym[a.0 as usize], &sym[b.0 as usize]) {
                        (Some(Sym::Parts(p)), Some(Sym::Parts(q))) => {
                            let mut p = p.clone();
                            p.extend(q.iter().copied());
                            Some(Sym::Parts(p))
                        }
                        (Some(Sym::Lifted(l1, p)), Some(Sym::Lifted(l2, q))) if l1 == l2 => {
                            let mut p = p.clone();
                            p.extend(q.iter().copied());
                            Some(Sym::Lifted(*l1, p))
                        }
                        _ => None,
                    };
                    sym[dst.0 as usize] = joined;
                }
                Op::Weaklift { dst, a, b } | Op::Stronglift { dst, a, b } => {
                    let lift = if matches!(op, Op::Weaklift { .. }) {
                        Lift::Weak
                    } else {
                        Lift::Strong
                    };
                    sym[dst.0 as usize] = match (&sym[a.0 as usize], &sym[b.0 as usize]) {
                        (Some(Sym::Parts(p)), Some(Sym::Parts(q)))
                            if *q == [Part::Builtin(RelBuiltin::Stxn)] =>
                        {
                            Some(Sym::Lifted(lift, p.clone()))
                        }
                        _ => None,
                    };
                }
                Op::Check { kind, src, .. } => {
                    covered_all &=
                        cover_check(kind, sym[src.0 as usize].as_ref(), &base, chunk, &mut plan);
                }
                _ => {
                    if let Some(AnyReg::R(r)) = op.def() {
                        sym[r as usize] = None;
                    }
                }
            }
        }
        plan.exact = covered_all;
        Some(plan)
    }
}

/// One symbolic summand during the delta scan.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Part {
    Builtin(RelBuiltin),
    Const(u16),
}

/// A register's symbolic value: a union of parts, optionally lifted
/// through the transaction classes.
#[derive(Clone)]
enum Sym {
    Parts(Vec<Part>),
    Lifted(Lift, Vec<Part>),
}

fn com_rules(sel: EdgeSel) -> [ComposeRule; 3] {
    [
        ComposeRule::direct(EdgeKind::Rf, sel),
        ComposeRule::direct(EdgeKind::Co, sel),
        ComposeRule::direct(EdgeKind::Fr, sel),
    ]
}

/// Translate one surviving check into delta state; `false` means the
/// check stays with the fallback run (plan turns inexact).
fn cover_check(
    kind: CheckKind,
    sym: Option<&Sym>,
    base: &ExecutionAnalysis<'_>,
    chunk: &Chunk,
    plan: &mut DeltaPlan,
) -> bool {
    let Some(sym) = sym else { return false };
    let (lift, parts) = match sym {
        Sym::Parts(p) => (Lift::No, p.as_slice()),
        Sym::Lifted(l, p) => (*l, p.as_slice()),
    };
    let n = base.len();
    match kind {
        CheckKind::Acyclic => {
            // A bare isolation builtin is itself a lifted com.
            if lift == Lift::No {
                if let [Part::Builtin(b)] = parts {
                    let l = match b {
                        RelBuiltin::WeakIsol => Some(Lift::Weak),
                        RelBuiltin::StrongIsol => Some(Lift::Strong),
                        _ => None,
                    };
                    if let Some(l) = l {
                        plan.obls.push(Obligation {
                            seed: Rel::empty(n),
                            feed: com_rules(EdgeSel::All).to_vec(),
                            lift: l,
                        });
                        return true;
                    }
                }
            }
            let mut seed = Rel::empty(n);
            let mut feed = Vec::new();
            for &part in parts {
                use RelBuiltin::*;
                match part {
                    Part::Const(idx) => seed = seed.union(&chunk.rel_consts[idx as usize]),
                    Part::Builtin(b) => match b {
                        Rf => feed.push(ComposeRule::direct(EdgeKind::Rf, EdgeSel::All)),
                        Rfe => feed.push(ComposeRule::direct(EdgeKind::Rf, EdgeSel::External)),
                        Rfi => feed.push(ComposeRule::direct(EdgeKind::Rf, EdgeSel::Internal)),
                        Co => feed.push(ComposeRule::direct(EdgeKind::Co, EdgeSel::All)),
                        Coe => feed.push(ComposeRule::direct(EdgeKind::Co, EdgeSel::External)),
                        Coi => feed.push(ComposeRule::direct(EdgeKind::Co, EdgeSel::Internal)),
                        Fr => feed.push(ComposeRule::direct(EdgeKind::Fr, EdgeSel::All)),
                        Fre => feed.push(ComposeRule::direct(EdgeKind::Fr, EdgeSel::External)),
                        Fri => feed.push(ComposeRule::direct(EdgeKind::Fr, EdgeSel::Internal)),
                        Com => feed.extend(com_rules(EdgeSel::All)),
                        Come => feed.extend(com_rules(EdgeSel::External)),
                        Coherence => {
                            seed = seed.union(base.po_loc());
                            feed.extend(com_rules(EdgeSel::All));
                        }
                        // Growing relations with no per-edge rule (the
                        // atomic lift has its own equivalence).
                        RmwIsol | WeakIsol | StrongIsol | StrongIsolAtomic => return false,
                        // Everything else is structure-fixed.
                        _ => seed = seed.union(&b.eval(base)),
                    },
                }
            }
            if lift == Lift::Weak {
                seed = weaklift(&seed, &plan.stxn);
            } else if lift == Lift::Strong {
                seed = stronglift(&seed, &plan.stxn);
            }
            plan.obls.push(Obligation { seed, feed, lift });
            true
        }
        CheckKind::Empty => {
            if lift != Lift::No {
                return false;
            }
            if parts == [Part::Builtin(RelBuiltin::RmwIsol)] {
                plan.track_rmw_isol = true;
                return true;
            }
            // A union of structure-fixed parts has its final value
            // already: decide it now.
            let mut fixed = Rel::empty(n);
            for &part in parts {
                use RelBuiltin::*;
                match part {
                    Part::Const(idx) => fixed = fixed.union(&chunk.rel_consts[idx as usize]),
                    Part::Builtin(b) => match b {
                        Rf | Rfe | Rfi | Co | Coe | Coi | Fr | Fre | Fri | Com | Come
                        | Coherence | RmwIsol | WeakIsol | StrongIsol | StrongIsolAtomic => {
                            return false
                        }
                        _ => fixed = fixed.union(&b.eval(base)),
                    },
                }
            }
            if !fixed.is_empty() {
                plan.dead = true;
            }
            true
        }
        // The obligation detectors are transitive: they would reject
        // benign two-step cycles an irreflexivity check permits.
        CheckKind::Irreflexive => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compiled(src: &str) -> CatModel {
        CatModel::new("probe", parse(src).expect("parse"))
    }

    fn survivors(src: &str, txns_known: bool) -> Vec<&'static str> {
        let m = compiled(src);
        match prune_program(m.program().expect("compile"), txns_known) {
            None => Vec::new(),
            Some(chunk) => chunk
                .ops
                .iter()
                .filter_map(|op| match op {
                    Op::Check { name, .. } => Some(chunk.names[*name as usize]),
                    _ => None,
                })
                .collect(),
        }
    }

    #[test]
    fn monotone_checks_survive() {
        assert_eq!(
            survivors("acyclic po | com as Order", false),
            ["Order"],
            "po ∪ com only grows"
        );
        assert_eq!(
            survivors("empty rmw & (fre ; coe) as RMWIsol", false),
            ["RMWIsol"]
        );
    }

    #[test]
    fn txn_checks_survive_only_once_txns_are_known() {
        let src = "acyclic stronglift(com, stxn) as StrongIsol";
        assert_eq!(survivors(src, false), Vec::<&str>::new());
        assert_eq!(survivors(src, true), ["StrongIsol"]);
    }

    #[test]
    fn complement_and_difference_poison() {
        // `~rf` and `po \ rf` can shrink as rf grows: never prune.
        assert_eq!(survivors("acyclic ~rf as No", true), Vec::<&str>::new());
        assert_eq!(
            survivors("irreflexive (po \\ rf) ; com as No", true),
            Vec::<&str>::new()
        );
        // ...but a difference with a fixed subtrahend is monotone.
        assert_eq!(survivors("acyclic (rf \\ sthd) | co as Ok", true), ["Ok"]);
    }

    #[test]
    fn mixed_models_keep_only_monotone_checks() {
        let src = "acyclic po | com as Order\nempty ~(po | rf) & rf as Weird";
        assert_eq!(survivors(src, false), ["Order"]);
    }

    #[test]
    fn recursive_groups_classify_through_the_fixpoint() {
        // The bound grows from rf: monotone, so the check survives —
        // and the fixpoint ranges survive the index remap.
        let src = "let rec r = rf | (r ; po)\nacyclic r as Rec";
        assert_eq!(survivors(src, false), ["Rec"]);
        // Poison an input and the bound poisons too.
        let src = "let rec r = ~rf | (r ; po)\nacyclic r as Rec";
        assert_eq!(survivors(src, false), Vec::<&str>::new());
    }

    #[test]
    fn oracle_agrees_with_full_check_on_complete_executions() {
        use txmm_models::catalog;
        let m = compiled("acyclic po | com as Order\nacyclic stronglift(com, stxn) as Iso");
        let oracle = CatPruneOracle::derive("probe", &m, true).expect("oracle");
        assert_eq!(oracle.checks(), 2);
        for x in [catalog::fig1(), catalog::fig2()] {
            let full = m.check(&x).expect("eval").is_consistent();
            let a = ExecutionAnalysis::with_fr(&x, x.fr());
            // On a complete execution the monotone core is a subset of
            // the checks: it may accept more, never less.
            assert!(oracle.viable(&a) || !full);
            if !oracle.viable(&a) {
                assert!(!full);
            }
        }
    }

    #[test]
    fn no_monotone_check_means_no_oracle() {
        let m = compiled("empty ~rf as No");
        assert!(CatPruneOracle::derive("probe", &m, true).is_none());
    }
}
