//! Tokeniser for the `.cat` subset.

use std::fmt;

/// A token of the `.cat` language subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier (`po`, `rfe`, `W`, ...).
    Ident(String),
    /// `let`.
    Let,
    /// `rec` (recursive definitions).
    Rec,
    /// `and` (between recursive bindings).
    And,
    /// `acyclic`.
    Acyclic,
    /// `irreflexive`.
    Irreflexive,
    /// `empty`.
    Empty,
    /// `as` (names a check).
    As,
    /// `|`.
    Bar,
    /// `&`.
    Amp,
    /// `\`.
    Backslash,
    /// `;`.
    Semi,
    /// `+`.
    Plus,
    /// `*`.
    Star,
    /// `?`.
    Question,
    /// `~`.
    Tilde,
    /// `^-1`.
    Inverse,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `=`.
    Eq,
    /// `_` (the universal set).
    Underscore,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            t => write!(f, "{t:?}"),
        }
    }
}

/// A lexical error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte position in the source.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenise `.cat` source. Comments run `//` to end of line and
/// `(*  *)` blocks (as in herd).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b')' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '|' => {
                out.push(Token::Bar);
                i += 1;
            }
            '&' => {
                out.push(Token::Amp);
                i += 1;
            }
            '\\' => {
                out.push(Token::Backslash);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '?' => {
                out.push(Token::Question);
                i += 1;
            }
            '~' => {
                out.push(Token::Tilde);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '_' if !bytes
                .get(i + 1)
                .is_some_and(|b| (*b as char).is_alphanumeric() || *b == b'_') =>
            {
                out.push(Token::Underscore);
                i += 1;
            }
            '^' => {
                if src[i..].starts_with("^-1") {
                    out.push(Token::Inverse);
                    i += 3;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "expected ^-1".into(),
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..i];
                out.push(match word {
                    "let" => Token::Let,
                    "rec" => Token::Rec,
                    "and" => Token::And,
                    "acyclic" => Token::Acyclic,
                    "irreflexive" => Token::Irreflexive,
                    "empty" => Token::Empty,
                    "as" => Token::As,
                    w => Token::Ident(w.to_string()),
                });
            }
            _ => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let ts = lex("let hb = po | rfe ; co^-1").unwrap();
        assert_eq!(
            ts,
            vec![
                Token::Let,
                Token::Ident("hb".into()),
                Token::Eq,
                Token::Ident("po".into()),
                Token::Bar,
                Token::Ident("rfe".into()),
                Token::Semi,
                Token::Ident("co".into()),
                Token::Inverse,
            ]
        );
    }

    #[test]
    fn comments() {
        let ts = lex("po // trailing\n(* block \n comment *) rf").unwrap();
        assert_eq!(
            ts,
            vec![Token::Ident("po".into()), Token::Ident("rf".into())]
        );
    }

    #[test]
    fn checks_and_brackets() {
        let ts = lex("acyclic [W] ; po as Order").unwrap();
        assert_eq!(ts[0], Token::Acyclic);
        assert!(ts.contains(&Token::As));
        assert!(ts.contains(&Token::LBracket));
    }

    #[test]
    fn underscore_universe() {
        let ts = lex("_ \\ W").unwrap();
        assert_eq!(ts[0], Token::Underscore);
        let ts2 = lex("_foo").unwrap();
        assert_eq!(ts2[0], Token::Ident("_foo".into()));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn stray_caret_errors() {
        assert!(lex("po ^ rf").is_err());
    }
}
