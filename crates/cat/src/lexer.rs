//! Tokeniser for the `.cat` subset.

use std::fmt;

/// A token of the `.cat` language subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier (`po`, `rfe`, `W`, ...).
    Ident(String),
    /// `let`.
    Let,
    /// `rec` (recursive definitions).
    Rec,
    /// `and` (between recursive bindings).
    And,
    /// `acyclic`.
    Acyclic,
    /// `irreflexive`.
    Irreflexive,
    /// `empty`.
    Empty,
    /// `as` (names a check).
    As,
    /// `|`.
    Bar,
    /// `&`.
    Amp,
    /// `\`.
    Backslash,
    /// `;`.
    Semi,
    /// `+`.
    Plus,
    /// `*`.
    Star,
    /// `?`.
    Question,
    /// `~`.
    Tilde,
    /// `^-1`.
    Inverse,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `=`.
    Eq,
    /// `_` (the universal set).
    Underscore,
    /// A `"..."` string literal (herd `include` arguments and friends;
    /// lexed so the parser can name the unsupported construct instead
    /// of choking on the quote character).
    Str(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "{s:?}"),
            t => write!(f, "{t:?}"),
        }
    }
}

/// A lexical error with its byte offset and 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte position in the source.
    pub pos: usize,
    /// 1-based source line.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {}", self.message, self.line)
    }
}

impl std::error::Error for LexError {}

/// Tokenise `.cat` source into `(token, 1-based line)` pairs. Comments
/// run `//` to end of line and `(*  *)` blocks (as in herd).
pub fn lex(src: &str) -> Result<Vec<(Token, u32)>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let mut push = |t: Token, len: usize| {
            out.push((t, line));
            len
        };
        i += match c {
            '\n' => {
                line += 1;
                1
            }
            ' ' | '\t' | '\r' => 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let mut j = i;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                j - i
            }
            '(' if bytes.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut j = i + 2;
                loop {
                    if j + 1 >= bytes.len() {
                        return Err(LexError {
                            pos: start,
                            line: start_line,
                            message: "unterminated comment".into(),
                        });
                    }
                    if bytes[j] == b'*' && bytes[j + 1] == b')' {
                        j += 2;
                        break;
                    }
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
                j - i
            }
            '"' => {
                let (start, start_line) = (i, line);
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\n' {
                    j += 1;
                }
                if bytes.get(j) != Some(&b'"') {
                    return Err(LexError {
                        pos: start,
                        line: start_line,
                        message: "unterminated string literal".into(),
                    });
                }
                let s = src[start + 1..j].to_string();
                push(Token::Str(s), j + 1 - i)
            }
            '|' => push(Token::Bar, 1),
            '&' => push(Token::Amp, 1),
            '\\' => push(Token::Backslash, 1),
            ';' => push(Token::Semi, 1),
            '+' => push(Token::Plus, 1),
            '*' => push(Token::Star, 1),
            '?' => push(Token::Question, 1),
            '~' => push(Token::Tilde, 1),
            '(' => push(Token::LParen, 1),
            ')' => push(Token::RParen, 1),
            '[' => push(Token::LBracket, 1),
            ']' => push(Token::RBracket, 1),
            ',' => push(Token::Comma, 1),
            '=' => push(Token::Eq, 1),
            '_' if !bytes
                .get(i + 1)
                .is_some_and(|b| (*b as char).is_alphanumeric() || *b == b'_') =>
            {
                push(Token::Underscore, 1)
            }
            '^' => {
                if src[i..].starts_with("^-1") {
                    push(Token::Inverse, 3)
                } else {
                    return Err(LexError {
                        pos: i,
                        line,
                        message: "unsupported operator '^' (only ^-1 is supported)".into(),
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let c = bytes[j] as char;
                    if c.is_alphanumeric() || c == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..j];
                let t = match word {
                    "let" => Token::Let,
                    "rec" => Token::Rec,
                    "and" => Token::And,
                    "acyclic" => Token::Acyclic,
                    "irreflexive" => Token::Irreflexive,
                    "empty" => Token::Empty,
                    "as" => Token::As,
                    w => Token::Ident(w.to_string()),
                };
                push(t, j - i)
            }
            _ => {
                return Err(LexError {
                    pos: i,
                    line,
                    message: format!("unsupported character {c:?}"),
                })
            }
        };
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            tokens("let hb = po | rfe ; co^-1"),
            vec![
                Token::Let,
                Token::Ident("hb".into()),
                Token::Eq,
                Token::Ident("po".into()),
                Token::Bar,
                Token::Ident("rfe".into()),
                Token::Semi,
                Token::Ident("co".into()),
                Token::Inverse,
            ]
        );
    }

    #[test]
    fn comments() {
        assert_eq!(
            tokens("po // trailing\n(* block \n comment *) rf"),
            vec![Token::Ident("po".into()), Token::Ident("rf".into())]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("po\n(* two\nlines *) rf\nco").unwrap();
        assert_eq!(
            ts,
            vec![
                (Token::Ident("po".into()), 1),
                (Token::Ident("rf".into()), 3),
                (Token::Ident("co".into()), 4),
            ]
        );
    }

    #[test]
    fn checks_and_brackets() {
        let ts = tokens("acyclic [W] ; po as Order");
        assert_eq!(ts[0], Token::Acyclic);
        assert!(ts.contains(&Token::As));
        assert!(ts.contains(&Token::LBracket));
    }

    #[test]
    fn underscore_universe() {
        assert_eq!(tokens("_ \\ W")[0], Token::Underscore);
        assert_eq!(tokens("_foo")[0], Token::Ident("_foo".into()));
    }

    #[test]
    fn string_literals() {
        let ts = lex("include \"x86fences.cat\"").unwrap();
        assert_eq!(ts[1], (Token::Str("x86fences.cat".into()), 1));
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn unsupported_character_reports_line() {
        let e = lex("po | rf\nfr -> co\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e
            .to_string()
            .contains("unsupported character '-' at line 2"));
    }

    #[test]
    fn stray_caret_errors() {
        let e = lex("po ^ rf").unwrap_err();
        assert!(e.to_string().contains("unsupported operator '^'"));
    }
}
