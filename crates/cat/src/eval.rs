//! Evaluating `.cat` models over executions.

use std::collections::HashMap;
use std::fmt;

use txmm_core::{stronglift, weaklift, Attrs, EventSet, Execution, ExecutionAnalysis, Fence, Rel};
use txmm_models::{Checker, Verdict};

use crate::parser::{CatFile, CheckKind, Decl, Expr};

/// A `.cat` value: a set of events or a relation.
///
/// `Rel` is an inline bit-matrix (no heap), so the variants differ in
/// size by design; boxing the relation would reintroduce the allocation
/// the representation exists to avoid.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A set of events.
    Set(EventSet),
    /// A binary relation.
    Rel(Rel),
}

/// An evaluation error, pointing at the source line of the construct
/// that failed (e.g. `unsupported operator 'fencerel' at line 12`).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Description, naming the offending construct.
    pub message: String,
    /// 1-based source line of the construct, when known.
    pub line: Option<u32>,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "{} at line {l}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for EvalError {}

fn err<T>(message: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError {
        message: message.into(),
        line: None,
    })
}

fn err_at<T>(line: u32, message: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError {
        message: message.into(),
        line: Some(line),
    })
}

/// The operators (herd "functions") the evaluator and the compiler
/// implement, with their arities. Anything else is an unsupported
/// construct; both pipelines phrase the diagnostic off this table.
pub(crate) const OPERATORS: [(&str, usize); 5] = [
    ("weaklift", 2),
    ("stronglift", 2),
    ("domain", 1),
    ("range", 1),
    ("fencerel", 1),
];

/// The evaluation environment: builtin sets/relations of the execution
/// plus user `let` bindings.
///
/// Builtins are served from a borrowed [`ExecutionAnalysis`], so a
/// `.cat` model evaluation costs the same derived-relation work as a
/// native model check — and checking several models (`.cat` or native)
/// against one execution shares the same cached structure.
pub struct Env<'a, 'x> {
    a: &'a ExecutionAnalysis<'x>,
    vars: HashMap<String, Value>,
}

impl<'a, 'x> Env<'a, 'x> {
    /// Builtins served from a caller-shared analysis.
    pub fn new(a: &'a ExecutionAnalysis<'x>) -> Env<'a, 'x> {
        Env {
            a,
            vars: HashMap::new(),
        }
    }

    fn builtin(&self, name: &str) -> Option<Value> {
        let a = self.a;
        let x = a.exec();
        let n = x.len();
        let rel = |r: Rel| Some(Value::Rel(r));
        let set = |s: EventSet| Some(Value::Set(s));
        match name {
            // Sets.
            "R" => set(a.reads()),
            "W" => set(a.writes()),
            "M" => set(x.accesses()),
            "F" => set(a.fences()),
            "A" | "Acq" => set(a.acq()),
            "L" | "Rel" => set(a.rel_events()),
            "SC" => set(a.sc_events()),
            "Ato" => set(a.ato()),
            "emptyset" => set(EventSet::EMPTY),
            // Relations.
            "id" => rel(Rel::id(n)),
            "unv" => rel(Rel::full(n)),
            "po" => rel(*x.po()),
            "addr" => rel(*x.addr()),
            "ctrl" => rel(*x.ctrl()),
            "data" => rel(*x.data()),
            "rmw" => rel(*x.rmw()),
            "rf" => rel(*x.rf()),
            "co" => rel(*x.co()),
            "fr" => rel(*a.fr()),
            "com" => rel(*a.com()),
            "rfe" => rel(*a.rfe()),
            "rfi" => rel(*a.rfi()),
            "coe" => rel(*a.coe()),
            "coi" => rel(*a.coi()),
            "fre" => rel(*a.fre()),
            "fri" => rel(*a.fri()),
            "come" => rel(*a.come()),
            "sloc" | "loc" => rel(*a.sloc()),
            "sthd" | "int" => rel(*a.sthd()),
            "ext" => rel(a.sthd().complement()),
            "poloc" => rel(*a.po_loc()),
            "stxn" => rel(*a.stxn()),
            "stxnat" => rel(*a.stxnat()),
            "tfence" => rel(*a.tfence()),
            "scr" => rel(*a.scr()),
            "scrt" => rel(*a.scrt()),
            "mfence" => rel(*a.fence_rel(Fence::MFence)),
            "sync" => rel(*a.fence_rel(Fence::Sync)),
            "lwsync" => rel(*a.fence_rel(Fence::Lwsync)),
            "isync" => rel(*a.fence_rel(Fence::Isync)),
            "dmb" => rel(*a.fence_rel(Fence::Dmb)),
            "dmbld" => rel(*a.fence_rel(Fence::DmbLd)),
            "dmbst" => rel(*a.fence_rel(Fence::DmbSt)),
            "isb" => rel(*a.fence_rel(Fence::Isb)),
            // Fence-event sets (for [ISB]-style uses).
            "ISB" => set(x.fence_events(Fence::Isb)),
            "MFENCE" => set(x.fence_events(Fence::MFence)),
            "SYNC" => set(x.fence_events(Fence::Sync)),
            "LWSYNC" => set(x.fence_events(Fence::Lwsync)),
            "ISYNC" => set(x.fence_events(Fence::Isync)),
            "DMB" => set(x.fence_events(Fence::Dmb)),
            "DMBLD" => set(x.fence_events(Fence::DmbLd)),
            "DMBST" => set(x.fence_events(Fence::DmbSt)),
            // Attribute shorthands used by the C++ model.
            "RlxW" => set(a.writes().inter(a.ato())),
            "RlxR" => set(a.reads().inter(a.ato())),
            "FSC" => set(a.sc_events().inter(a.fences())),
            "AcqRead" => set(a.acq().inter(a.reads())),
            "RelWrite" => set(x.with_attr(Attrs::REL).inter(a.writes())),
            _ => None,
        }
    }

    fn lookup(&self, name: &str, line: u32) -> Result<Value, EvalError> {
        if let Some(v) = self.vars.get(name) {
            return Ok(v.clone());
        }
        match self.builtin(name) {
            Some(v) => Ok(v),
            None => err_at(line, format!("unbound identifier '{name}'")),
        }
    }

    fn as_rel(&self, v: Value) -> Rel {
        match v {
            Value::Rel(r) => r,
            // Implicit coercion: a set used as a relation means [set]
            // (herd does the same for `[S]`-free positions rarely; we
            // keep it for convenience in lifts).
            Value::Set(s) => Rel::id_on(self.a.len(), s),
        }
    }

    /// Evaluate an expression.
    pub fn eval(&self, e: &Expr) -> Result<Value, EvalError> {
        let n = self.a.len();
        Ok(match e {
            Expr::Ident(name, line) => self.lookup(name, *line)?,
            Expr::Universe => Value::Set(EventSet::universe(n)),
            Expr::Union(a, b) => match (self.eval(a)?, self.eval(b)?) {
                (Value::Set(x), Value::Set(y)) => Value::Set(x.union(y)),
                (x, y) => Value::Rel(self.as_rel(x).union(&self.as_rel(y))),
            },
            Expr::Inter(a, b) => match (self.eval(a)?, self.eval(b)?) {
                (Value::Set(x), Value::Set(y)) => Value::Set(x.inter(y)),
                (x, y) => Value::Rel(self.as_rel(x).inter(&self.as_rel(y))),
            },
            Expr::Diff(a, b) => match (self.eval(a)?, self.eval(b)?) {
                (Value::Set(x), Value::Set(y)) => Value::Set(x.minus(y)),
                (x, y) => Value::Rel(self.as_rel(x).minus(&self.as_rel(y))),
            },
            Expr::Seq(a, b) => {
                Value::Rel(self.as_rel(self.eval(a)?).seq(&self.as_rel(self.eval(b)?)))
            }
            Expr::Cross(a, b) => match (self.eval(a)?, self.eval(b)?) {
                (Value::Set(x), Value::Set(y)) => Value::Rel(Rel::cross(n, x, y)),
                _ => return err("cross product needs two sets"),
            },
            Expr::Plus(a) => Value::Rel(self.as_rel(self.eval(a)?).plus()),
            Expr::Star(a) => Value::Rel(self.as_rel(self.eval(a)?).star()),
            Expr::Opt(a) => Value::Rel(self.as_rel(self.eval(a)?).opt()),
            Expr::Inverse(a) => Value::Rel(self.as_rel(self.eval(a)?).inverse()),
            Expr::Complement(a) => match self.eval(a)? {
                Value::Set(s) => Value::Set(s.complement(n)),
                Value::Rel(r) => Value::Rel(r.complement()),
            },
            Expr::IdOn(a) => match self.eval(a)? {
                Value::Set(s) => Value::Rel(Rel::id_on(n, s)),
                Value::Rel(_) => return err("[_] needs a set"),
            },
            Expr::Call(f, args, line) => self.call(f, args, *line)?,
        })
    }

    fn call(&self, f: &str, args: &[Expr], line: u32) -> Result<Value, EvalError> {
        let rel_arg =
            |i: usize| -> Result<Rel, EvalError> { Ok(self.as_rel(self.eval(&args[i])?)) };
        match (f, args.len()) {
            ("weaklift", 2) => Ok(Value::Rel(weaklift(&rel_arg(0)?, &rel_arg(1)?))),
            ("stronglift", 2) => Ok(Value::Rel(stronglift(&rel_arg(0)?, &rel_arg(1)?))),
            ("domain", 1) => Ok(Value::Set(rel_arg(0)?.domain())),
            ("range", 1) => Ok(Value::Set(rel_arg(0)?.range())),
            ("fencerel", 1) => {
                // herd's fencerel(S) = po ; [S] ; po — the ordering
                // induced by the fence events in S. The argument is a
                // set; a relation argument is an arity-class error the
                // same way a set in seq position would be.
                let id = match self.eval(&args[0])? {
                    Value::Set(s) => Rel::id_on(self.a.len(), s),
                    Value::Rel(_) => {
                        return err_at(line, "operator 'fencerel' expects a set of fence events")
                    }
                };
                let po = self.a.exec().po();
                Ok(Value::Rel(po.seq(&id).seq(po)))
            }
            _ => match OPERATORS.iter().find(|(name, _)| *name == f) {
                Some((_, arity)) => err_at(
                    line,
                    format!(
                        "operator '{f}' expects {arity} arguments, got {}",
                        args.len()
                    ),
                ),
                None => err_at(line, format!("unsupported operator '{f}'")),
            },
        }
    }
}

/// Per-model compile-cache counters, aggregated into the daemon stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Checks served by an already-specialised tier.
    pub hits: u64,
    /// Checks that had to specialise their tier first.
    pub misses: u64,
    /// Specialised tiers currently resident.
    pub entries: u64,
    /// Cumulative compile + specialise time, in microseconds.
    pub micros: u64,
}

impl CompileStats {
    /// Component-wise sum, for per-shard aggregation.
    pub fn merge(&mut self, other: CompileStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries += other.entries;
        self.micros += other.micros;
    }
}

thread_local! {
    /// One register file per thread: checking a stream of executions
    /// allocates nothing after the banks first grow to fit.
    static VM: std::cell::RefCell<crate::vm::Vm> = std::cell::RefCell::new(crate::vm::Vm::new());
}

/// A compiled `.cat` model ready to check executions.
///
/// Construction lowers and optimises the parsed file into a generic
/// bytecode program once; checking specialises it per event count into
/// a tier cache (`OnceLock` per count, so concurrent shards share each
/// tier) and runs the VM. Compile-time diagnostics are stored and
/// returned from every check, preserving the interpreter's
/// construct-plus-line error quality. The AST interpreter survives as
/// the `*_reference` methods for differential checking.
pub struct CatModel {
    /// The display name.
    pub name: &'static str,
    file: CatFile,
    /// The optimised generic program, or the compile diagnostic.
    program: Result<crate::chunk::Chunk, EvalError>,
    /// Per-event-count specialised programs, built on first use.
    tiers: Vec<std::sync::OnceLock<crate::chunk::Chunk>>,
    /// Compile-cache telemetry: registry handles labelled by model
    /// name, so every `CatModel` shows up in the metrics exposition
    /// while `compile_stats()` keeps reading this instance's own
    /// counts.
    hits: txmm_obs::Counter,
    misses: txmm_obs::Counter,
    compile_nanos: txmm_obs::Counter,
    /// Check labels leaked once, for the reference interpreter path.
    check_names: Vec<&'static str>,
}

impl CatModel {
    /// Compile a parsed file. Lowering errors are deferred: they come
    /// back from every check, exactly like interpreter errors did.
    pub fn new(name: &'static str, file: CatFile) -> CatModel {
        let start = std::time::Instant::now();
        let program = {
            let _span = txmm_obs::span!("cat.compile");
            crate::compile::compile(&file)
        };
        let compile_nanos = start.elapsed().as_nanos() as u64;
        let check_names = file
            .decls
            .iter()
            .filter_map(|d| match d {
                Decl::Check { name, .. } => {
                    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
                    Some(leaked)
                }
                _ => None,
            })
            .collect();
        let obs = txmm_obs::global();
        let labels = [("model", name)];
        let nanos = obs.counter_with(
            "txmm_cat_compile_nanoseconds_total",
            "Cumulative .cat compile + specialise time.",
            &labels,
        );
        nanos.add(compile_nanos);
        CatModel {
            name,
            file,
            program,
            tiers: (0..=txmm_core::MAX_EVENTS)
                .map(|_| std::sync::OnceLock::new())
                .collect(),
            hits: obs.counter_with(
                "txmm_cat_compile_cache_hits_total",
                "Checks served by an already-specialised .cat tier.",
                &labels,
            ),
            misses: obs.counter_with(
                "txmm_cat_compile_cache_misses_total",
                "Checks that had to specialise their .cat tier first.",
                &labels,
            ),
            compile_nanos: nanos,
            check_names,
        }
    }

    /// The optimised generic program, or the compile diagnostic.
    pub fn program(&self) -> Result<&crate::chunk::Chunk, &EvalError> {
        self.program.as_ref()
    }

    /// The specialised program for event count `n`, compiling it on
    /// first use.
    fn tier<'p>(&'p self, program: &'p crate::chunk::Chunk, n: usize) -> &'p crate::chunk::Chunk {
        let Some(slot) = self.tiers.get(n) else {
            return program;
        };
        if let Some(t) = slot.get() {
            self.hits.inc();
            return t;
        }
        slot.get_or_init(|| {
            self.misses.inc();
            let _span = txmm_obs::span!("cat.specialise");
            let start = std::time::Instant::now();
            let t = crate::opt::specialise(program, n);
            self.compile_nanos.add(start.elapsed().as_nanos() as u64);
            t
        })
    }

    /// Compile-cache counters since construction.
    pub fn compile_stats(&self) -> CompileStats {
        CompileStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self.tiers.iter().filter(|t| t.get().is_some()).count() as u64,
            micros: self.compile_nanos.get() / 1_000,
        }
    }

    /// Evaluate every check over an execution (private analysis).
    pub fn check(&self, x: &Execution) -> Result<Verdict, EvalError> {
        self.check_analysis(&x.analysis())
    }

    /// Run the compiled program against a caller-shared analysis.
    pub fn check_analysis(&self, a: &ExecutionAnalysis<'_>) -> Result<Verdict, EvalError> {
        let _span = txmm_obs::span!("vm.check");
        let program = self.program.as_ref().map_err(Clone::clone)?;
        let chunk = self.tier(program, a.len());
        let mut checker = Checker::new(self.name);
        VM.with(|vm| vm.borrow_mut().run(chunk, a, &mut checker));
        Ok(checker.finish())
    }

    /// Convenience: is the execution consistent under this model?
    pub fn consistent(&self, x: &Execution) -> Result<bool, EvalError> {
        Ok(self.check(x)?.is_consistent())
    }

    /// Convenience: consistency against a caller-shared analysis.
    pub fn consistent_analysis(&self, a: &ExecutionAnalysis<'_>) -> Result<bool, EvalError> {
        Ok(self.check_analysis(a)?.is_consistent())
    }

    /// The AST-walking interpreter over a private analysis, kept for
    /// differential checking against the VM.
    pub fn check_reference(&self, x: &Execution) -> Result<Verdict, EvalError> {
        self.check_analysis_reference(&x.analysis())
    }

    /// Convenience: reference-interpreter consistency.
    pub fn consistent_reference(&self, x: &Execution) -> Result<bool, EvalError> {
        Ok(self.check_reference(x)?.is_consistent())
    }

    /// The AST-walking interpreter against a caller-shared analysis.
    pub fn check_analysis_reference(
        &self,
        a: &ExecutionAnalysis<'_>,
    ) -> Result<Verdict, EvalError> {
        let x = a.exec();
        let mut env = Env::new(a);
        let mut checker = Checker::new(self.name);
        let mut next_check = 0usize;
        for decl in &self.file.decls {
            match decl {
                Decl::Let {
                    recursive: false,
                    bindings,
                } => {
                    for (name, e) in bindings {
                        let v = env.eval(e)?;
                        env.vars.insert(name.clone(), v);
                    }
                }
                Decl::Let {
                    recursive: true,
                    bindings,
                } => {
                    // Least fixpoint: start from empty relations and
                    // iterate (all cat fixpoints we use are monotone).
                    let n = x.len();
                    for (name, _) in bindings {
                        env.vars.insert(name.clone(), Value::Rel(Rel::empty(n)));
                    }
                    loop {
                        let mut changed = false;
                        for (name, e) in bindings {
                            let v = env.eval(e)?;
                            if env.vars.get(name) != Some(&v) {
                                env.vars.insert(name.clone(), v);
                                changed = true;
                            }
                        }
                        if !changed {
                            break;
                        }
                    }
                }
                Decl::Check { kind, expr, .. } => {
                    let r = env.as_rel(env.eval(expr)?);
                    // Labels were leaked once at construction; the
                    // interpreter used to leak one copy per evaluation.
                    let static_name = self.check_names[next_check];
                    next_check += 1;
                    match kind {
                        CheckKind::Acyclic => checker.acyclic(static_name, &r),
                        CheckKind::Irreflexive => checker.irreflexive(static_name, &r),
                        CheckKind::Empty => checker.empty(static_name, &r),
                    };
                }
            }
        }
        Ok(checker.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use txmm_core::ExecBuilder;
    use txmm_models::catalog;

    fn sc_model() -> CatModel {
        CatModel::new("cat-sc", parse("acyclic po | com as Order").unwrap())
    }

    #[test]
    fn sc_in_cat() {
        let m = sc_model();
        assert!(m.consistent(&catalog::fig1()).unwrap());
        assert!(!m.consistent(&catalog::sb(None, false, false)).unwrap());
    }

    #[test]
    fn tsc_in_cat() {
        let src = "
            let hb = po | com
            acyclic hb as Order
            acyclic stronglift(hb, stxn) as TxnOrder
        ";
        let m = CatModel::new("cat-tsc", parse(src).unwrap());
        assert!(!m.consistent(&catalog::fig3('a')).unwrap());
        assert!(m.consistent(&catalog::fig1()).unwrap());
    }

    #[test]
    fn sets_and_cross() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 0);
        b.read(t0, 0);
        let x = b.build().unwrap();
        let a = x.analysis();
        let env = Env::new(&a);
        let e = parse("let z = (W * R) & po").unwrap();
        let Decl::Let { bindings, .. } = &e.decls[0] else {
            panic!()
        };
        let Value::Rel(r) = env.eval(&bindings[0].1).unwrap() else {
            panic!()
        };
        assert!(r.contains(0, 1));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn let_rec_fixpoint() {
        // Transitive closure via a recursive definition.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.read(t0, 0);
        b.read(t0, 0);
        b.read(t0, 0);
        let x = b.build().unwrap();
        let src = "
            let step = po & ~(po ; po)   // immediate po
            let rec tc = step | tc ; step
            empty tc \\ po as Sub
            empty po \\ tc as Sup
        ";
        let m = CatModel::new("rec", parse(src).unwrap());
        let v = m.check(&x).unwrap();
        assert!(v.is_consistent(), "{v}");
    }

    #[test]
    fn unbound_identifier_errors() {
        // Class: reference to a relation/set the subset doesn't define.
        let m = CatModel::new(
            "bad",
            parse("let hb = po | com\nacyclic hb ; nonsense as X").unwrap(),
        );
        let e = m.check(&catalog::fig1()).unwrap_err();
        assert_eq!(e.to_string(), "unbound identifier 'nonsense' at line 2");
    }

    #[test]
    fn unsupported_operator_reports_name_and_line() {
        // Class: herd operator (function) outside the subset.
        let src = "let hb = po | com\nlet f = fold(MFENCE)\nacyclic hb as Order";
        let m = CatModel::new("bad", parse(src).unwrap());
        let e = m.check(&catalog::fig1()).unwrap_err();
        assert_eq!(e.to_string(), "unsupported operator 'fold' at line 2");
    }

    #[test]
    fn fencerel_matches_native_derivation() {
        // fencerel(MFENCE) must equal the native analysis derivation
        // po ; [F_mfence] ; po on a fence-bearing execution.
        use txmm_core::Fence;
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 0);
        b.fence(t0, Fence::MFence);
        b.read(t0, 1);
        let t1 = b.new_thread();
        b.write(t1, 1);
        let x = b.build().unwrap();
        let a = x.analysis();
        let env = Env::new(&a);
        let e = parse("let f = fencerel(MFENCE)").unwrap();
        let Decl::Let { bindings, .. } = &e.decls[0] else {
            panic!()
        };
        let Value::Rel(r) = env.eval(&bindings[0].1).unwrap() else {
            panic!()
        };
        assert_eq!(&r, a.fence_rel(Fence::MFence), "cat = native derivation");
        assert!(r.contains(0, 2), "write before the fence orders the read");
        assert!(!r.contains(0, 3), "no cross-thread fence ordering");
    }

    #[test]
    fn fencerel_models_check_like_builtin_fence_relations() {
        // A model phrased through fencerel (the herd idiom) must agree
        // with the same model phrased through the builtin alias.
        use txmm_core::Fence;
        let via_fencerel = CatModel::new(
            "fencerel-sc",
            parse("acyclic po | com as Order\nacyclic fencerel(MFENCE) | com as Fenced").unwrap(),
        );
        let via_builtin = CatModel::new(
            "builtin-sc",
            parse("acyclic po | com as Order\nacyclic mfence | com as Fenced").unwrap(),
        );
        for x in [
            catalog::fig1(),
            catalog::sb(Some(Fence::MFence), false, false),
            catalog::sb(None, false, false),
        ] {
            assert_eq!(
                via_fencerel.check(&x).unwrap().violations(),
                via_builtin.check(&x).unwrap().violations()
            );
        }
    }

    #[test]
    fn fencerel_rejects_relation_arguments() {
        let m = CatModel::new("bad", parse("acyclic fencerel(po) as X").unwrap());
        let e = m.check(&catalog::fig1()).unwrap_err();
        assert_eq!(
            e.to_string(),
            "operator 'fencerel' expects a set of fence events at line 1"
        );
    }

    #[test]
    fn wrong_operator_arity_reports_line() {
        // Class: supported operator applied at the wrong arity.
        let m = CatModel::new("bad", parse("acyclic stronglift(po) as X").unwrap());
        let e = m.check(&catalog::fig1()).unwrap_err();
        assert_eq!(
            e.to_string(),
            "operator 'stronglift' expects 2 arguments, got 1 at line 1"
        );
    }

    #[test]
    fn check_names_reported() {
        let m = sc_model();
        let v = m.check(&catalog::sb(None, false, false)).unwrap();
        assert_eq!(v.violations(), ["Order"]);
    }
}
