//! The bytecode interpreter for compiled `.cat` programs.
//!
//! [`Vm::run`] executes a [`Chunk`] against one execution's shared
//! `ExecutionAnalysis`, pushing check results into a `Checker`. The
//! only allocation is the register file itself, and a [`Vm`] reuses its
//! banks across runs — checking a stream of executions through one
//! model allocates nothing after the first call.
//!
//! The row-parallel ops (union, intersection, difference, complement,
//! composition, closures) compute word-by-word into the destination
//! register — no 520-byte `Rel` temporaries on the hot path — and
//! builtin loads row-copy straight out of the shared analysis caches.
//! Ops that genuinely permute rows (inverse, the lifts) fall back to
//! whole-value evaluation, as does any op whose destination aliases an
//! operand it reads out of row order; register compaction is free to
//! alias a destination with a dying operand either way. Fixpoint groups
//! execute exactly the interpreter's Gauss–Seidel rounds: each
//! `FixUpdate` folds one binding's new value into the `changed` flag,
//! and the trailing `FixLoop` re-enters the body until a round leaves
//! every binding untouched.

use txmm_core::{EventSet, ExecutionAnalysis, Rel};
use txmm_models::Checker;

use crate::chunk::{Chunk, Op};
use crate::parser::CheckKind;

/// A reusable register file for executing compiled chunks.
#[derive(Default)]
pub struct Vm {
    rel: Vec<Rel>,
    set: Vec<EventSet>,
    /// The `(rel_regs, set_regs, events)` shape of the last run. While
    /// the shape is stable — the steady state of checking a stream of
    /// same-sized executions through one model — the banks are reused
    /// as-is: compaction guarantees every physical register is written
    /// before it is read, and stale values at the same event count
    /// already satisfy `Rel`'s zero-tail invariant.
    shape: (u16, u16, usize),
}

impl Vm {
    /// A VM with empty banks; they grow to fit the first chunk run.
    pub fn new() -> Vm {
        Vm::default()
    }

    /// Execute `chunk` against `a`, recording each check in `checker`.
    ///
    /// A specialised chunk must only run at its own event count; the
    /// generic program runs at any count.
    pub fn run(&mut self, chunk: &Chunk, a: &ExecutionAnalysis<'_>, checker: &mut Checker) {
        let n = a.len();
        debug_assert!(
            chunk.events.is_none() || chunk.events == Some(n),
            "chunk specialised for {:?} events run at {n}",
            chunk.events
        );
        let shape = (chunk.rel_regs, chunk.set_regs, n);
        if self.shape != shape {
            self.rel.clear();
            self.rel.resize(chunk.rel_regs as usize, Rel::empty(n));
            self.set.clear();
            self.set.resize(chunk.set_regs as usize, EventSet::EMPTY);
            self.shape = shape;
        }
        let rel = &mut self.rel[..];
        let set = &mut self.set[..];
        let mut changed = false;
        let mut pc = 0usize;
        while pc < chunk.ops.len() {
            let op = chunk.ops[pc];
            pc += 1;
            match op {
                Op::LoadR { dst, b } => match b.eval_ref(a) {
                    Some(r) => rel[dst.0 as usize].copy_from(r),
                    None => rel[dst.0 as usize] = b.eval(a),
                },
                Op::LoadS { dst, b } => set[dst.0 as usize] = b.eval(a),
                Op::ConstR { dst, idx } => {
                    rel[dst.0 as usize].copy_from(&chunk.rel_consts[idx as usize])
                }
                Op::ConstS { dst, idx } => set[dst.0 as usize] = chunk.set_consts[idx as usize],
                Op::UnionR { dst, a, b } => {
                    for i in 0..n {
                        let w = rel[a.0 as usize].word(i) | rel[b.0 as usize].word(i);
                        rel[dst.0 as usize].set_word(i, w);
                    }
                }
                Op::InterR { dst, a, b } => {
                    for i in 0..n {
                        let w = rel[a.0 as usize].word(i) & rel[b.0 as usize].word(i);
                        rel[dst.0 as usize].set_word(i, w);
                    }
                }
                Op::DiffR { dst, a, b } => {
                    for i in 0..n {
                        let w = rel[a.0 as usize].word(i) & !rel[b.0 as usize].word(i);
                        rel[dst.0 as usize].set_word(i, w);
                    }
                }
                Op::SeqR { dst, a, b } => {
                    // Row-by-row is sound unless the destination aliases
                    // the right operand, whose rows are read out of order.
                    if dst == b {
                        let v = rel[a.0 as usize].seq(&rel[b.0 as usize]);
                        rel[dst.0 as usize] = v;
                    } else {
                        for i in 0..n {
                            let mut mids = rel[a.0 as usize].word(i);
                            let mut out = 0u64;
                            while mids != 0 {
                                let m = mids.trailing_zeros() as usize;
                                mids &= mids - 1;
                                out |= rel[b.0 as usize].word(m);
                            }
                            rel[dst.0 as usize].set_word(i, out);
                        }
                    }
                }
                Op::UnionS { dst, a, b } => {
                    let v = set[a.0 as usize].union(set[b.0 as usize]);
                    set[dst.0 as usize] = v;
                }
                Op::InterS { dst, a, b } => {
                    let v = set[a.0 as usize].inter(set[b.0 as usize]);
                    set[dst.0 as usize] = v;
                }
                Op::DiffS { dst, a, b } => {
                    let v = set[a.0 as usize].minus(set[b.0 as usize]);
                    set[dst.0 as usize] = v;
                }
                Op::Cross { dst, a, b } => {
                    let av = set[a.0 as usize];
                    let bits = set[b.0 as usize].inter(EventSet::universe(n)).bits();
                    for i in 0..n {
                        rel[dst.0 as usize].set_word(i, if av.contains(i) { bits } else { 0 });
                    }
                }
                Op::IdOn { dst, src } => {
                    let s = set[src.0 as usize];
                    for i in 0..n {
                        rel[dst.0 as usize].set_word(i, if s.contains(i) { 1u64 << i } else { 0 });
                    }
                }
                Op::Plus { dst, src } => {
                    if dst != src {
                        for i in 0..n {
                            let w = rel[src.0 as usize].word(i);
                            rel[dst.0 as usize].set_word(i, w);
                        }
                    }
                    rel[dst.0 as usize].transitive_close();
                }
                Op::Star { dst, src } => {
                    if dst != src {
                        for i in 0..n {
                            let w = rel[src.0 as usize].word(i);
                            rel[dst.0 as usize].set_word(i, w);
                        }
                    }
                    rel[dst.0 as usize].transitive_close();
                    rel[dst.0 as usize].reflexive_close();
                }
                Op::Opt { dst, src } => {
                    if dst != src {
                        for i in 0..n {
                            let w = rel[src.0 as usize].word(i);
                            rel[dst.0 as usize].set_word(i, w);
                        }
                    }
                    rel[dst.0 as usize].reflexive_close();
                }
                Op::Inverse { dst, src } => {
                    let v = rel[src.0 as usize].inverse();
                    rel[dst.0 as usize] = v;
                }
                Op::ComplementR { dst, src } => {
                    let mask = EventSet::universe(n).bits();
                    for i in 0..n {
                        let w = !rel[src.0 as usize].word(i) & mask;
                        rel[dst.0 as usize].set_word(i, w);
                    }
                }
                Op::ComplementS { dst, src } => {
                    let v = set[src.0 as usize].complement(n);
                    set[dst.0 as usize] = v;
                }
                Op::Domain { dst, src } => {
                    let v = rel[src.0 as usize].domain();
                    set[dst.0 as usize] = v;
                }
                Op::Range { dst, src } => {
                    let v = rel[src.0 as usize].range();
                    set[dst.0 as usize] = v;
                }
                Op::Weaklift { dst, a, b } => {
                    let v = txmm_core::weaklift(&rel[a.0 as usize], &rel[b.0 as usize]);
                    rel[dst.0 as usize] = v;
                }
                Op::Stronglift { dst, a, b } => {
                    let v = txmm_core::stronglift(&rel[a.0 as usize], &rel[b.0 as usize]);
                    rel[dst.0 as usize] = v;
                }
                Op::Fencerel { dst, src } => {
                    // po ; [S] ; po, one row at a time: successors of
                    // `i` that are fences in S, then their successors.
                    let po = a.po();
                    let bits = set[src.0 as usize].inter(EventSet::universe(n)).bits();
                    for i in 0..n {
                        let mut mids = po.word(i) & bits;
                        let mut out = 0u64;
                        while mids != 0 {
                            let m = mids.trailing_zeros() as usize;
                            mids &= mids - 1;
                            out |= po.word(m);
                        }
                        rel[dst.0 as usize].set_word(i, out);
                    }
                }
                Op::Universe { dst } => set[dst.0 as usize] = EventSet::universe(n),
                Op::EmptyR { dst } => {
                    for i in 0..n {
                        rel[dst.0 as usize].set_word(i, 0);
                    }
                }
                Op::FixUpdate { bound, src } => {
                    for i in 0..n {
                        let w = rel[src.0 as usize].word(i);
                        if rel[bound.0 as usize].word(i) != w {
                            changed = true;
                            rel[bound.0 as usize].set_word(i, w);
                        }
                    }
                }
                Op::FixLoop { start } => {
                    if changed {
                        changed = false;
                        pc = start as usize;
                    }
                }
                Op::Check { kind, src, name } => {
                    let r = &rel[src.0 as usize];
                    let label = chunk.names[name as usize];
                    match kind {
                        CheckKind::Acyclic => checker.acyclic(label, r),
                        CheckKind::Irreflexive => checker.irreflexive(label, r),
                        CheckKind::Empty => checker.empty(label, r),
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, lower};
    use crate::opt::specialise;
    use crate::parser::parse;
    use txmm_models::catalog;

    /// A spread of catalog executions: fenced and unfenced, with and
    /// without transactions, across the paper's worked examples.
    fn executions() -> Vec<txmm_core::Execution> {
        use txmm_core::Fence;
        vec![
            catalog::fig1(),
            catalog::fig2(),
            catalog::sb(None, false, false),
            catalog::sb(Some(Fence::MFence), false, false),
            catalog::sb(Some(Fence::Sync), false, false),
            catalog::sb(None, true, true),
            catalog::mp(None, false, false),
            catalog::mp(Some(Fence::Lwsync), false, false),
            catalog::mp(None, false, true),
            catalog::lb(false),
            catalog::power_exec1(),
            catalog::power_exec2(),
            catalog::power_exec3(false),
            catalog::power_exec3(true),
            catalog::remark51(false),
            catalog::remark51(true),
        ]
    }

    /// Every shipped model, on every catalog execution, through four
    /// pipelines — naive lowering, the optimised program, and the
    /// specialised tier — must reproduce the reference interpreter's
    /// violation list exactly.
    #[test]
    fn all_pipelines_match_the_reference_interpreter() {
        for (name, src) in crate::models::SOURCES {
            let file = parse(src).expect(name);
            let reference = crate::CatModel::new(name, file.clone());
            let naive = lower(&file).expect(name);
            let optimised = compile(&file).expect(name);
            let mut vm = Vm::new();
            for x in executions() {
                let a = x.analysis();
                let want = reference.check_analysis_reference(&a).expect(name);
                let tier = specialise(&optimised, a.len());
                for chunk in [&naive, &optimised, &tier] {
                    let mut checker = Checker::new(name);
                    vm.run(chunk, &a, &mut checker);
                    assert_eq!(
                        checker.finish().violations(),
                        want.violations(),
                        "{name} diverges on catalog execution\n{}",
                        chunk.disassemble()
                    );
                }
            }
        }
    }

    #[test]
    fn fixpoints_converge_to_the_interpreter_value() {
        // hb = (po | rf)+ via the recursive phrasing.
        let src = "let rec hb = (po | rf) | (hb ; hb)\nacyclic hb as Hb\n";
        let file = parse(src).unwrap();
        let reference = crate::CatModel::new("hb", file.clone());
        let chunk = compile(&file).unwrap();
        let mut vm = Vm::new();
        for x in executions() {
            let a = x.analysis();
            let want = reference.check_analysis_reference(&a).unwrap();
            let mut checker = Checker::new("hb");
            vm.run(&chunk, &a, &mut checker);
            assert_eq!(checker.finish().violations(), want.violations());
        }
    }

    #[test]
    fn vm_reuses_its_banks_across_event_counts() {
        let small = compile(&parse("acyclic po | com as Order\n").unwrap()).unwrap();
        let mut vm = Vm::new();
        for x in executions() {
            let a = x.analysis();
            let mut checker = Checker::new("sc");
            vm.run(&small, &a, &mut checker);
            let _ = checker.finish();
        }
    }
}
