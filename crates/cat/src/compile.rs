//! Lowering parsed `.cat` files to [`Chunk`] bytecode.
//!
//! The lowerer resolves every name once — user `let` bindings become
//! register aliases, builtins become loads — and assigns each
//! expression node a fresh register; [`crate::opt::optimise`] then
//! dedups, rewrites and compacts the naive stream. Value kinds (set vs
//! relation) are fully static in the `.cat` subset, so every error the
//! AST interpreter reports at evaluation time is a *compile-time*
//! diagnostic here, with the same message and 1-based source line:
//! compiling and evaluating a model fail identically, construct for
//! construct.
//!
//! `let rec` groups lower to the same sequential (Gauss–Seidel) least
//! fixpoint the interpreter iterates: seed every bound register empty,
//! then per iteration evaluate each binding in order, folding its value
//! into the bound register through a [`Op::FixUpdate`] convergence
//! test, and loop while anything changed. Recursive bindings are
//! relation-typed (they start from the empty relation, exactly like
//! the interpreter's seed).

use std::collections::HashMap;

use crate::chunk::{Chunk, Op, RReg, RelBuiltin, SReg, SetBuiltin};
use crate::eval::EvalError;
use crate::parser::{CatFile, Decl, Expr};

fn err<T>(message: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError {
        message: message.into(),
        line: None,
    })
}

fn err_at<T>(line: u32, message: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError {
        message: message.into(),
        line: Some(line),
    })
}

/// A lowered expression value: a register in one of the two banks.
#[derive(Debug, Clone, Copy)]
enum Val {
    R(RReg),
    S(SReg),
}

/// Compile a parsed file to an optimised, event-count-generic program.
pub fn compile(file: &CatFile) -> Result<Chunk, EvalError> {
    Ok(crate::opt::optimise(lower(file)?))
}

/// Lower without optimising (one register per expression node); the
/// optimiser tests diff this against [`compile`].
pub fn lower(file: &CatFile) -> Result<Chunk, EvalError> {
    let mut l = Lowerer {
        ops: Vec::new(),
        rel_regs: 0,
        set_regs: 0,
        names: Vec::new(),
        fix_groups: Vec::new(),
        env: HashMap::new(),
    };
    for decl in &file.decls {
        l.decl(decl)?;
    }
    Ok(Chunk {
        ops: l.ops,
        rel_regs: l.rel_regs,
        set_regs: l.set_regs,
        names: l.names,
        fix_groups: l.fix_groups,
        rel_consts: Vec::new(),
        set_consts: Vec::new(),
        events: None,
    })
}

struct Lowerer {
    ops: Vec<Op>,
    rel_regs: u16,
    set_regs: u16,
    names: Vec<&'static str>,
    fix_groups: Vec<(u32, u32)>,
    env: HashMap<String, Val>,
}

impl Lowerer {
    fn rreg(&mut self) -> RReg {
        let r = RReg(self.rel_regs);
        self.rel_regs += 1;
        r
    }

    fn sreg(&mut self) -> SReg {
        let s = SReg(self.set_regs);
        self.set_regs += 1;
        s
    }

    /// The interpreter's implicit set→relation coercion: `[set]`.
    fn as_rel(&mut self, v: Val) -> RReg {
        match v {
            Val::R(r) => r,
            Val::S(s) => {
                let dst = self.rreg();
                self.ops.push(Op::IdOn { dst, src: s });
                dst
            }
        }
    }

    fn decl(&mut self, decl: &Decl) -> Result<(), EvalError> {
        match decl {
            Decl::Let {
                recursive: false,
                bindings,
            } => {
                for (name, e) in bindings {
                    let v = self.expr(e)?;
                    self.env.insert(name.clone(), v);
                }
            }
            Decl::Let {
                recursive: true,
                bindings,
            } => {
                let bound: Vec<RReg> = bindings
                    .iter()
                    .map(|(name, _)| {
                        let dst = self.rreg();
                        self.ops.push(Op::EmptyR { dst });
                        self.env.insert(name.clone(), Val::R(dst));
                        dst
                    })
                    .collect();
                let start = self.ops.len() as u32;
                for ((_, e), &b) in bindings.iter().zip(&bound) {
                    let v = self.expr(e)?;
                    let src = self.as_rel(v);
                    self.ops.push(Op::FixUpdate { bound: b, src });
                }
                self.ops.push(Op::FixLoop { start });
                self.fix_groups.push((start, self.ops.len() as u32));
            }
            Decl::Check { kind, expr, name } => {
                let v = self.expr(expr)?;
                let src = self.as_rel(v);
                // Leak the label once per compile; the program serves
                // arbitrarily many checks from this table.
                let idx = self.names.len() as u16;
                self.names.push(Box::leak(name.clone().into_boxed_str()));
                self.ops.push(Op::Check {
                    kind: *kind,
                    src,
                    name: idx,
                });
            }
        }
        Ok(())
    }

    fn lookup(&mut self, name: &str, line: u32) -> Result<Val, EvalError> {
        if let Some(&v) = self.env.get(name) {
            return Ok(v);
        }
        if let Some(b) = SetBuiltin::lookup(name) {
            let dst = self.sreg();
            self.ops.push(Op::LoadS { dst, b });
            return Ok(Val::S(dst));
        }
        if let Some(b) = RelBuiltin::lookup(name) {
            let dst = self.rreg();
            self.ops.push(Op::LoadR { dst, b });
            return Ok(Val::R(dst));
        }
        err_at(line, format!("unbound identifier '{name}'"))
    }

    /// Binary set-or-relation operators: set when both sides are sets,
    /// otherwise both coerce to relations (the interpreter's rule).
    fn setrel(
        &mut self,
        a: &Expr,
        b: &Expr,
        set_op: impl FnOnce(SReg, SReg, SReg) -> Op,
        rel_op: impl FnOnce(RReg, RReg, RReg) -> Op,
    ) -> Result<Val, EvalError> {
        let x = self.expr(a)?;
        let y = self.expr(b)?;
        Ok(match (x, y) {
            (Val::S(a), Val::S(b)) => {
                let dst = self.sreg();
                self.ops.push(set_op(dst, a, b));
                Val::S(dst)
            }
            (x, y) => {
                let a = self.as_rel(x);
                let b = self.as_rel(y);
                let dst = self.rreg();
                self.ops.push(rel_op(dst, a, b));
                Val::R(dst)
            }
        })
    }

    /// Unary relation operators (operand coerces).
    fn unary(&mut self, a: &Expr, op: impl FnOnce(RReg, RReg) -> Op) -> Result<Val, EvalError> {
        let v = self.expr(a)?;
        let src = self.as_rel(v);
        let dst = self.rreg();
        self.ops.push(op(dst, src));
        Ok(Val::R(dst))
    }

    fn expr(&mut self, e: &Expr) -> Result<Val, EvalError> {
        match e {
            Expr::Ident(name, line) => self.lookup(name, *line),
            Expr::Universe => {
                let dst = self.sreg();
                self.ops.push(Op::Universe { dst });
                Ok(Val::S(dst))
            }
            Expr::Union(a, b) => self.setrel(
                a,
                b,
                |dst, a, b| Op::UnionS { dst, a, b },
                |dst, a, b| Op::UnionR { dst, a, b },
            ),
            Expr::Inter(a, b) => self.setrel(
                a,
                b,
                |dst, a, b| Op::InterS { dst, a, b },
                |dst, a, b| Op::InterR { dst, a, b },
            ),
            Expr::Diff(a, b) => self.setrel(
                a,
                b,
                |dst, a, b| Op::DiffS { dst, a, b },
                |dst, a, b| Op::DiffR { dst, a, b },
            ),
            Expr::Seq(a, b) => {
                let x = self.expr(a)?;
                let ra = self.as_rel(x);
                let y = self.expr(b)?;
                let rb = self.as_rel(y);
                let dst = self.rreg();
                self.ops.push(Op::SeqR { dst, a: ra, b: rb });
                Ok(Val::R(dst))
            }
            Expr::Cross(a, b) => {
                let x = self.expr(a)?;
                let y = self.expr(b)?;
                match (x, y) {
                    (Val::S(a), Val::S(b)) => {
                        let dst = self.rreg();
                        self.ops.push(Op::Cross { dst, a, b });
                        Ok(Val::R(dst))
                    }
                    _ => err("cross product needs two sets"),
                }
            }
            Expr::Plus(a) => self.unary(a, |dst, src| Op::Plus { dst, src }),
            Expr::Star(a) => self.unary(a, |dst, src| Op::Star { dst, src }),
            Expr::Opt(a) => self.unary(a, |dst, src| Op::Opt { dst, src }),
            Expr::Inverse(a) => self.unary(a, |dst, src| Op::Inverse { dst, src }),
            Expr::Complement(a) => match self.expr(a)? {
                Val::S(src) => {
                    let dst = self.sreg();
                    self.ops.push(Op::ComplementS { dst, src });
                    Ok(Val::S(dst))
                }
                Val::R(src) => {
                    let dst = self.rreg();
                    self.ops.push(Op::ComplementR { dst, src });
                    Ok(Val::R(dst))
                }
            },
            Expr::IdOn(a) => match self.expr(a)? {
                Val::S(src) => {
                    let dst = self.rreg();
                    self.ops.push(Op::IdOn { dst, src });
                    Ok(Val::R(dst))
                }
                Val::R(_) => err("[_] needs a set"),
            },
            Expr::Call(f, args, line) => self.call(f, args, *line),
        }
    }

    /// Operator applications, with the interpreter's exact error order:
    /// a name/arity mismatch is reported before the arguments are
    /// looked at; a `fencerel` kind mismatch after its argument
    /// compiles.
    fn call(&mut self, f: &str, args: &[Expr], line: u32) -> Result<Val, EvalError> {
        match (f, args.len()) {
            ("weaklift", 2) | ("stronglift", 2) => {
                let x = self.expr(&args[0])?;
                let a = self.as_rel(x);
                let y = self.expr(&args[1])?;
                let b = self.as_rel(y);
                let dst = self.rreg();
                self.ops.push(if f == "weaklift" {
                    Op::Weaklift { dst, a, b }
                } else {
                    Op::Stronglift { dst, a, b }
                });
                Ok(Val::R(dst))
            }
            ("domain", 1) | ("range", 1) => {
                let x = self.expr(&args[0])?;
                let src = self.as_rel(x);
                let dst = self.sreg();
                self.ops.push(if f == "domain" {
                    Op::Domain { dst, src }
                } else {
                    Op::Range { dst, src }
                });
                Ok(Val::S(dst))
            }
            ("fencerel", 1) => match self.expr(&args[0])? {
                Val::S(src) => {
                    let dst = self.rreg();
                    self.ops.push(Op::Fencerel { dst, src });
                    Ok(Val::R(dst))
                }
                Val::R(_) => err_at(line, "operator 'fencerel' expects a set of fence events"),
            },
            _ => match crate::eval::OPERATORS.iter().find(|(name, _)| *name == f) {
                Some((_, arity)) => err_at(
                    line,
                    format!(
                        "operator '{f}' expects {arity} arguments, got {}",
                        args.len()
                    ),
                ),
                None => err_at(line, format!("unsupported operator '{f}'")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_err(src: &str) -> EvalError {
        compile(&parse(src).unwrap()).unwrap_err()
    }

    #[test]
    fn shipped_models_compile() {
        for (name, src) in crate::models::SOURCES {
            let c = compile(&parse(src).unwrap()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!c.is_empty(), "{name}");
            assert!(
                c.ops
                    .iter()
                    .any(|op| matches!(op, crate::chunk::Op::Check { .. })),
                "{name} keeps its checks"
            );
        }
    }

    // One diagnostic test per construct class, mirroring the
    // interpreter's tests in `eval::tests` — compile errors carry the
    // same message and 1-based line as the `EvalError` the AST walk
    // reports.

    #[test]
    fn unbound_identifier_reports_name_and_line() {
        let e = compile_err("let hb = po | com\nacyclic hb ; nonsense as X");
        assert_eq!(e.to_string(), "unbound identifier 'nonsense' at line 2");
    }

    #[test]
    fn unsupported_operator_reports_name_and_line() {
        let e = compile_err("let hb = po | com\nlet f = fold(MFENCE)\nacyclic hb as Order");
        assert_eq!(e.to_string(), "unsupported operator 'fold' at line 2");
    }

    #[test]
    fn wrong_operator_arity_reports_line() {
        let e = compile_err("acyclic stronglift(po) as X");
        assert_eq!(
            e.to_string(),
            "operator 'stronglift' expects 2 arguments, got 1 at line 1"
        );
    }

    #[test]
    fn fencerel_rejects_relation_arguments() {
        let e = compile_err("acyclic fencerel(po) as X");
        assert_eq!(
            e.to_string(),
            "operator 'fencerel' expects a set of fence events at line 1"
        );
    }

    #[test]
    fn cross_product_needs_two_sets() {
        let e = compile_err("acyclic po * W as X");
        assert_eq!(e.to_string(), "cross product needs two sets");
    }

    #[test]
    fn id_lift_needs_a_set() {
        let e = compile_err("acyclic [po] as X");
        assert_eq!(e.to_string(), "[_] needs a set");
    }

    #[test]
    fn errors_surface_even_in_dead_definitions() {
        // The interpreter evaluates declarations in order, so a broken
        // binding fails the model even when no check reads it; the
        // compiler diagnoses it before dead-code elimination runs.
        let e = compile_err("let dead = fold(po)\nacyclic po as Order");
        assert_eq!(e.to_string(), "unsupported operator 'fold' at line 1");
    }
}
