//! The paper's models as `.cat` sources, compiled on demand.
//!
//! These mirror the companion material the paper ships: one `.cat` file
//! per model (baseline and transactional). Differential tests check the
//! DSL evaluations against the native Rust models on both the paper
//! catalog and enumerated executions.

use crate::eval::CatModel;
use crate::parser::parse;

/// `(name, source)` for every shipped model.
pub const SOURCES: [(&str, &str); 10] = [
    ("SC", include_str!("../models/sc.cat")),
    ("TSC", include_str!("../models/tsc.cat")),
    ("x86", include_str!("../models/x86.cat")),
    ("x86-tm", include_str!("../models/x86-tm.cat")),
    ("power", include_str!("../models/power.cat")),
    ("power-tm", include_str!("../models/power-tm.cat")),
    ("armv8", include_str!("../models/armv8.cat")),
    ("armv8-tm", include_str!("../models/armv8-tm.cat")),
    ("cpp", include_str!("../models/cpp.cat")),
    ("cpp-tm", include_str!("../models/cpp-tm.cat")),
];

/// Compile one shipped model by name.
pub fn cat_model(name: &str) -> Option<CatModel> {
    SOURCES.iter().find(|(n, _)| *n == name).map(|(n, src)| {
        let file = parse(src).unwrap_or_else(|e| panic!("shipped model {n} fails to parse: {e}"));
        CatModel::new(n, file)
    })
}

/// Compile every shipped model.
pub fn all_cat_models() -> Vec<CatModel> {
    SOURCES
        .iter()
        .map(|(n, _)| cat_model(n).expect("shipped model"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_models::catalog::{self, Expect};
    use txmm_models::registry::by_name;
    use txmm_synth::{enumerate, EnumConfig};

    #[test]
    fn all_sources_parse() {
        assert_eq!(all_cat_models().len(), SOURCES.len());
    }

    #[test]
    fn catalog_expectations_hold_in_cat() {
        // The .cat models assign every catalog execution the same
        // verdict the paper (and the native models) do.
        for entry in catalog::all() {
            for (model_name, expect) in &entry.expect {
                let Some(m) = cat_model(model_name) else {
                    continue;
                };
                let got = m
                    .consistent(&entry.exec)
                    .unwrap_or_else(|e| panic!("{model_name} on {}: {e}", entry.name));
                assert_eq!(
                    got,
                    matches!(expect, Expect::Consistent),
                    "{} under cat {model_name}",
                    entry.name
                );
            }
        }
    }

    fn differential(arch: txmm_models::Arch, names: &[&str], events: usize) {
        let mut cfg = EnumConfig::hw(arch, events);
        cfg.max_threads = 2;
        for name in names {
            let cat = cat_model(name).expect("model exists");
            let native = by_name(name).expect("native model exists");
            // Debug builds sample the space (full coverage in release).
            let stride = if cfg!(debug_assertions) { 7 } else { 1 };
            let mut seen = 0usize;
            let mut checked = 0usize;
            enumerate(&cfg, &mut |x| {
                seen += 1;
                if !seen.is_multiple_of(stride) {
                    return;
                }
                let c = cat.consistent(x).expect("cat evaluates");
                let n = native.consistent(x);
                assert_eq!(
                    c,
                    n,
                    "cat vs native {name} disagree on:\n{}",
                    txmm_core::display::render(x)
                );
                checked += 1;
            });
            assert!(checked > 0);
        }
    }

    #[test]
    fn differential_x86() {
        differential(txmm_models::Arch::X86, &["x86", "x86-tm"], 3);
    }

    #[test]
    fn differential_power() {
        differential(txmm_models::Arch::Power, &["power", "power-tm"], 3);
    }

    #[test]
    fn differential_armv8() {
        differential(txmm_models::Arch::Armv8, &["armv8", "armv8-tm"], 3);
    }

    #[test]
    fn differential_sc_tsc() {
        differential(txmm_models::Arch::Sc, &["SC", "TSC"], 3);
    }

    #[test]
    fn differential_cpp() {
        let mut cfg = EnumConfig::hw(txmm_models::Arch::Cpp, 3);
        cfg.max_threads = 2;
        cfg.attrs = true;
        cfg.atomic_txns = true;
        cfg.fences = true;
        for name in ["cpp", "cpp-tm"] {
            let cat = cat_model(name).expect("model exists");
            let native = by_name(name).expect("native model");
            let stride = if cfg!(debug_assertions) { 7 } else { 1 };
            let mut seen = 0usize;
            let mut checked = 0usize;
            enumerate(&cfg, &mut |x| {
                seen += 1;
                if !seen.is_multiple_of(stride) {
                    return;
                }
                let c = cat.consistent(x).expect("cat evaluates");
                let n = native.consistent(x);
                assert_eq!(c, n, "cat vs native {name} disagree");
                checked += 1;
            });
            assert!(checked > 0);
        }
    }
}
