//! Rendering litmus tests: pseudocode (like the paper's figures) and
//! per-architecture assembly-style listings.

use txmm_core::{loc_name, Fence};
use txmm_models::Arch;

use crate::ast::{AccessMode, Check, Dep, DepKind, LitmusTest, Op};

fn post_to_string(t: &LitmusTest) -> String {
    let parts: Vec<String> = t
        .post
        .iter()
        .map(|c| match c {
            Check::Reg { tid, reg, value } => format!("{tid}:r{reg} = {value}"),
            Check::Loc { loc, value } => format!("{} = {value}", loc_name(*loc)),
            Check::TxnOk { txn_id } => format!("ok{txn_id} = 1"),
            Check::CoSeq { loc, values } => format!(
                "co({}) = [{}]",
                loc_name(*loc),
                values
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        })
        .collect();
    parts.join(" /\\ ")
}

fn dep_note(deps: &[Dep]) -> String {
    if deps.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = deps
        .iter()
        .map(|d| {
            let k = match d.kind {
                DepKind::Addr => "addr",
                DepKind::Data => "data",
                DepKind::Ctrl => "ctrl",
            };
            format!("{k}#{}", d.on)
        })
        .collect();
    format!("  // deps: {}", parts.join(","))
}

/// Render as architecture-neutral pseudocode, one thread per block.
pub fn pseudocode(t: &LitmusTest) -> String {
    let mut out = format!("{} ({})\n", t.name, t.arch.name());
    let init: Vec<String> = t
        .locations()
        .iter()
        .map(|&l| format!("{} = 0", loc_name(l)))
        .collect();
    out.push_str(&format!("Initially: {}\n", init.join(", ")));
    for (tid, instrs) in t.threads.iter().enumerate() {
        out.push_str(&format!("thread {tid}:\n"));
        for i in instrs {
            let line = match &i.op {
                Op::Load { reg, loc, mode } => {
                    format!("r{reg} <- {}{}", loc_name(*loc), mode_suffix(mode))
                }
                Op::Store { loc, value, mode } => {
                    format!("{}{} <- {value}", loc_name(*loc), mode_suffix(mode))
                }
                Op::Fence(f, _) => f.mnemonic().to_string(),
                Op::TxBegin { txn_id, atomic } => {
                    let marker = if *atomic { ".atomic" } else { "" };
                    format!("txbegin{marker} (fail: ok{txn_id} <- 0)")
                }
                Op::TxEnd => "txend".to_string(),
                Op::LockCall(sym) => format!("{sym}()"),
            };
            out.push_str(&format!("  {line}{}\n", dep_note(&i.deps)));
        }
    }
    out.push_str(&format!("Test: {}\n", post_to_string(t)));
    out
}

fn mode_suffix(m: &AccessMode) -> &'static str {
    match (m.acquire, m.release, m.sc, m.exclusive) {
        (_, _, true, _) => ".sc",
        (true, _, _, true) => ".acq.ex",
        (true, _, _, false) => ".acq",
        (_, true, _, true) => ".rel.ex",
        (_, true, _, false) => ".rel",
        (_, _, _, true) => ".ex",
        _ => "",
    }
}

/// Render using the conventions of the target architecture.
pub fn assembly(t: &LitmusTest) -> String {
    match t.arch {
        Arch::X86 => x86(t),
        Arch::Power => power(t),
        Arch::Armv8 => armv8(t),
        Arch::Cpp => cpp(t),
        Arch::Sc => pseudocode(t),
    }
}

fn header(t: &LitmusTest) -> String {
    let init: Vec<String> = t
        .locations()
        .iter()
        .map(|&l| format!("{} = 0", loc_name(l)))
        .collect();
    format!(
        "{} \"{}\"\nInitially: {}\n",
        t.arch.name(),
        t.name,
        init.join(", ")
    )
}

fn footer(t: &LitmusTest) -> String {
    format!("Test: {}\n", post_to_string(t))
}

fn x86(t: &LitmusTest) -> String {
    let mut out = header(t);
    for (tid, instrs) in t.threads.iter().enumerate() {
        out.push_str(&format!("P{tid}:\n"));
        for i in instrs {
            let line = match &i.op {
                Op::Load { reg, loc, mode } if mode.exclusive => {
                    format!("LOCK XADD r{reg},[{}]", loc_name(*loc))
                }
                Op::Load { reg, loc, .. } => format!("MOV r{reg},[{}]", loc_name(*loc)),
                Op::Store { loc, value, mode } if mode.exclusive => {
                    format!(
                        "; store half of LOCK'd RMW: [{}] <- {value}",
                        loc_name(*loc)
                    )
                }
                Op::Store { loc, value, .. } => format!("MOV [{}],{value}", loc_name(*loc)),
                Op::Fence(Fence::MFence, _) => "MFENCE".to_string(),
                Op::Fence(f, _) => format!("; unsupported fence {f:?}"),
                Op::TxBegin { txn_id, .. } => format!("XBEGIN Lfail{txn_id}"),
                Op::TxEnd => "XEND".to_string(),
                Op::LockCall(sym) => format!("{sym}()"),
            };
            out.push_str(&format!("  {line}{}\n", dep_note(&i.deps)));
        }
    }
    out.push_str(&footer(t));
    out
}

fn power(t: &LitmusTest) -> String {
    let mut out = header(t);
    for (tid, instrs) in t.threads.iter().enumerate() {
        out.push_str(&format!("P{tid}:\n"));
        for i in instrs {
            let line = match &i.op {
                Op::Load { reg, loc, mode } if mode.exclusive => {
                    format!("lwarx r{reg},0,{}", loc_name(*loc))
                }
                Op::Load { reg, loc, .. } => format!("lwz r{reg},0({})", loc_name(*loc)),
                Op::Store { loc, value, mode } if mode.exclusive => {
                    format!("stwcx. {value},0,{}", loc_name(*loc))
                }
                Op::Store { loc, value, .. } => format!("stw {value},0({})", loc_name(*loc)),
                Op::Fence(Fence::Sync, _) => "sync".to_string(),
                Op::Fence(Fence::Lwsync, _) => "lwsync".to_string(),
                Op::Fence(Fence::Isync, _) => "isync".to_string(),
                Op::Fence(f, _) => format!("# unsupported fence {f:?}"),
                Op::TxBegin { txn_id, .. } => format!("tbegin. # fail -> Lfail{txn_id}"),
                Op::TxEnd => "tend.".to_string(),
                Op::LockCall(sym) => format!("{sym}()"),
            };
            out.push_str(&format!("  {line}{}\n", dep_note(&i.deps)));
        }
    }
    out.push_str(&footer(t));
    out
}

fn armv8(t: &LitmusTest) -> String {
    let mut out = header(t);
    for (tid, instrs) in t.threads.iter().enumerate() {
        out.push_str(&format!("P{tid}:\n"));
        for i in instrs {
            let line = match &i.op {
                Op::Load { reg, loc, mode } => {
                    let mn = match (mode.acquire, mode.exclusive) {
                        (true, true) => "LDAXR",
                        (true, false) => "LDAR",
                        (false, true) => "LDXR",
                        (false, false) => "LDR",
                    };
                    format!("{mn} W{reg},[{}]", loc_name(*loc))
                }
                Op::Store { loc, value, mode } => {
                    let mn = match (mode.release, mode.exclusive) {
                        (true, true) => "STLXR",
                        (true, false) => "STLR",
                        (false, true) => "STXR",
                        (false, false) => "STR",
                    };
                    format!("{mn} #{value},[{}]", loc_name(*loc))
                }
                Op::Fence(Fence::Dmb, _) => "DMB SY".to_string(),
                Op::Fence(Fence::DmbLd, _) => "DMB LD".to_string(),
                Op::Fence(Fence::DmbSt, _) => "DMB ST".to_string(),
                Op::Fence(Fence::Isb, _) => "ISB".to_string(),
                Op::Fence(f, _) => format!("// unsupported fence {f:?}"),
                Op::TxBegin { txn_id, .. } => format!("TXBEGIN Lfail{txn_id}"),
                Op::TxEnd => "TXEND".to_string(),
                Op::LockCall(sym) => format!("{sym}()"),
            };
            out.push_str(&format!("  {line}{}\n", dep_note(&i.deps)));
        }
    }
    out.push_str(&footer(t));
    out
}

fn cpp(t: &LitmusTest) -> String {
    let mut out = header(t);
    for (tid, instrs) in t.threads.iter().enumerate() {
        out.push_str(&format!("// thread {tid}\n{{\n"));
        let mut depth = 1usize;
        for i in instrs {
            let pad = "  ".repeat(depth);
            let line = match &i.op {
                Op::Load { reg, loc, mode } if mode.atomic => format!(
                    "int r{reg} = atomic_load_explicit(&{}, {});",
                    loc_name(*loc),
                    cpp_mode(mode, true)
                ),
                Op::Load { reg, loc, .. } => {
                    format!("int r{reg} = {};", loc_name(*loc))
                }
                Op::Store { loc, value, mode } if mode.atomic => format!(
                    "atomic_store_explicit(&{}, {value}, {});",
                    loc_name(*loc),
                    cpp_mode(mode, false)
                ),
                Op::Store { loc, value, .. } => format!("{} = {value};", loc_name(*loc)),
                Op::Fence(Fence::CppFence, attrs) => {
                    let m = if attrs.contains(txmm_core::Attrs::SC) {
                        "memory_order_seq_cst"
                    } else if attrs.contains(txmm_core::Attrs::ACQ)
                        && attrs.contains(txmm_core::Attrs::REL)
                    {
                        "memory_order_acq_rel"
                    } else if attrs.contains(txmm_core::Attrs::ACQ) {
                        "memory_order_acquire"
                    } else {
                        "memory_order_release"
                    };
                    format!("atomic_thread_fence({m});")
                }
                Op::Fence(f, _) => format!("// unsupported fence {f:?}"),
                Op::TxBegin { atomic, .. } => {
                    depth += 1;
                    if *atomic {
                        "atomic {"
                    } else {
                        "synchronized {"
                    }
                    .to_string()
                }
                Op::TxEnd => {
                    depth -= 1;
                    out.push_str(&format!("{}}}\n", "  ".repeat(depth)));
                    continue;
                }
                Op::LockCall(sym) => format!("{sym}();"),
            };
            out.push_str(&format!("{pad}{line}{}\n", dep_note(&i.deps)));
        }
        out.push_str("}\n");
    }
    out.push_str(&footer(t));
    out
}

fn cpp_mode(m: &AccessMode, is_load: bool) -> &'static str {
    if m.sc {
        "memory_order_seq_cst"
    } else if is_load && m.acquire {
        "memory_order_acquire"
    } else if !is_load && m.release {
        "memory_order_release"
    } else {
        "memory_order_relaxed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_exec::litmus_from_execution;
    use txmm_core::{Attrs, ExecBuilder};
    use txmm_models::catalog;

    #[test]
    fn pseudocode_fig1() {
        let t = litmus_from_execution("fig1", &catalog::fig1(), Arch::X86);
        let s = pseudocode(&t);
        assert!(s.contains("Initially: x = 0"));
        assert!(s.contains("r0 <- x"));
        assert!(s.contains("Test: 0:r0 = 2 /\\ x = 2"));
    }

    #[test]
    fn pseudocode_fig2_txn() {
        let t = litmus_from_execution("fig2", &catalog::fig2(), Arch::X86);
        let s = pseudocode(&t);
        assert!(s.contains("txbegin (fail: ok0 <- 0)"));
        assert!(s.contains("txend"));
        assert!(s.contains("ok0 = 1"));
    }

    #[test]
    fn armv8_mnemonics() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.read_acq(t0, 1);
        let w = b.write(t0, 1);
        b.rmw(a, w);
        b.fence(t0, Fence::Dmb);
        let _c = b.write_rel(t0, 0);
        let x = b.build().unwrap();
        let t = litmus_from_execution("lock", &x, Arch::Armv8);
        let s = assembly(&t);
        assert!(s.contains("LDAXR W0,[y]"));
        assert!(s.contains("STXR"));
        assert!(s.contains("DMB SY"));
        assert!(s.contains("STLR"));
    }

    #[test]
    fn power_mnemonics() {
        let t = litmus_from_execution(
            "mp",
            &catalog::mp(Some(Fence::Sync), true, false),
            Arch::Power,
        );
        let s = assembly(&t);
        assert!(s.contains("sync"));
        assert!(s.contains("lwz"));
        assert!(s.contains("stw"));
        assert!(s.contains("deps: addr#0"));
    }

    #[test]
    fn x86_mnemonics() {
        let t = litmus_from_execution(
            "sb+mfence",
            &catalog::sb(Some(Fence::MFence), false, false),
            Arch::X86,
        );
        let s = assembly(&t);
        assert!(s.contains("MFENCE"));
        assert!(s.contains("MOV [x],1"));
    }

    #[test]
    fn x86_txn_renders_xbegin() {
        let t = litmus_from_execution("sb+txn", &catalog::sb(None, true, true), Arch::X86);
        let s = assembly(&t);
        assert!(s.contains("XBEGIN Lfail0"));
        assert!(s.contains("XEND"));
        assert!(s.contains("ok0 = 1"));
        assert!(s.contains("ok1 = 1"));
    }

    #[test]
    fn cpp_rendering() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        b.txn_atomic(&[w]);
        let t1 = b.new_thread();
        let _r = b.read_ato(t1, 0, Attrs::SC);
        let x = b.build().unwrap();
        let t = litmus_from_execution("cppdemo", &x, Arch::Cpp);
        let s = assembly(&t);
        assert!(s.contains("atomic {"));
        assert!(s.contains("x = 1;"));
        assert!(s.contains("atomic_load_explicit(&x, memory_order_seq_cst)"));
        let p = pseudocode(&t);
        assert!(p.contains("txbegin.atomic (fail: ok0 <- 0)"));
    }

    #[test]
    fn cpp_relaxed_txn_renders_synchronized() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        b.txn(&[w]);
        let x = b.build().unwrap();
        let t = litmus_from_execution("sync", &x, Arch::Cpp);
        let s = assembly(&t);
        assert!(s.contains("synchronized {"));
        assert!(!s.contains("atomic {"));
        assert!(pseudocode(&t).contains("txbegin (fail: ok0 <- 0)"));
    }

    use txmm_core::Fence;
}
