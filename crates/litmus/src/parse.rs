//! A parser for the pseudocode litmus format produced by
//! [`crate::render::pseudocode`], enabling round-trips (render → parse →
//! render) and hand-written test files.
//!
//! The format, line by line:
//!
//! ```text
//! NAME (ARCH)
//! Initially: x = 0, y = 0
//! thread 0:
//!   r0 <- x.acq        // deps: addr#0
//!   y.rel <- 1
//!   txbegin (fail: ok0 <- 0)
//!   txend
//!   MFENCE
//! Test: 0:r0 = 1 /\ x = 2 /\ ok0 = 1 /\ co(x) = [1,2]
//! ```

use std::fmt;

use txmm_core::{Attrs, Fence, Loc};
use txmm_models::Arch;

use crate::ast::{AccessMode, Check, Dep, DepKind, Instr, LitmusTest, Op};

/// A litmus parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LitmusParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "litmus parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for LitmusParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, LitmusParseError> {
    Err(LitmusParseError {
        line,
        message: message.into(),
    })
}

fn parse_loc(s: &str, line: usize) -> Result<Loc, LitmusParseError> {
    match s {
        "x" => Ok(0),
        "y" => Ok(1),
        "z" => Ok(2),
        "w" => Ok(3),
        "v" => Ok(4),
        "u" => Ok(5),
        _ => {
            if let Some(rest) = s.strip_prefix('l') {
                rest.parse().map_err(|_| LitmusParseError {
                    line,
                    message: format!("bad location {s}"),
                })
            } else {
                err(line, format!("bad location {s}"))
            }
        }
    }
}

fn parse_mode(
    suffixes: &str,
    exclusive_ok: bool,
    line: usize,
) -> Result<AccessMode, LitmusParseError> {
    let mut m = AccessMode::default();
    for part in suffixes.split('.').filter(|p| !p.is_empty()) {
        match part {
            "acq" => m.acquire = true,
            "rel" => m.release = true,
            "sc" => {
                m.sc = true;
                m.atomic = true;
            }
            "ato" => m.atomic = true,
            "ex" if exclusive_ok => m.exclusive = true,
            other => return err(line, format!("unknown access suffix .{other}")),
        }
    }
    Ok(m)
}

fn parse_deps(comment: &str, line: usize) -> Result<Vec<Dep>, LitmusParseError> {
    // "// deps: addr#0,data#2"
    let Some(idx) = comment.find("deps:") else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for part in comment[idx + 5..].split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((kind, on)) = part.split_once('#') else {
            return err(line, format!("bad dep {part}"));
        };
        let kind = match kind {
            "addr" => DepKind::Addr,
            "data" => DepKind::Data,
            "ctrl" => DepKind::Ctrl,
            _ => return err(line, format!("bad dep kind {kind}")),
        };
        let on = on.trim().parse().map_err(|_| LitmusParseError {
            line,
            message: format!("bad dep index {on}"),
        })?;
        out.push(Dep { on, kind });
    }
    Ok(out)
}

fn parse_fence(word: &str) -> Option<(Fence, Attrs)> {
    match word {
        "MFENCE" => Some((Fence::MFence, Attrs::NONE)),
        "sync" => Some((Fence::Sync, Attrs::NONE)),
        "lwsync" => Some((Fence::Lwsync, Attrs::NONE)),
        "isync" => Some((Fence::Isync, Attrs::NONE)),
        "DMB" => Some((Fence::Dmb, Attrs::NONE)),
        "DMB LD" => Some((Fence::DmbLd, Attrs::NONE)),
        "DMB ST" => Some((Fence::DmbSt, Attrs::NONE)),
        "ISB" => Some((Fence::Isb, Attrs::NONE)),
        "fence" => Some((
            Fence::CppFence,
            Attrs::SC.union(Attrs::ACQ).union(Attrs::REL),
        )),
        _ => None,
    }
}

fn parse_check(part: &str, line: usize) -> Result<Check, LitmusParseError> {
    let part = part.trim();
    if let Some(rest) = part.strip_prefix("co(") {
        // co(x) = [1,2,3]
        let Some((loc, vals)) = rest.split_once(") = [") else {
            return err(line, format!("bad co check {part}"));
        };
        let loc = parse_loc(loc.trim(), line)?;
        let vals = vals.trim_end_matches(']');
        let values = vals
            .split(',')
            .filter(|v| !v.trim().is_empty())
            .map(|v| v.trim().parse::<u32>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| LitmusParseError {
                line,
                message: format!("bad co values {vals}"),
            })?;
        return Ok(Check::CoSeq { loc, values });
    }
    let Some((lhs, rhs)) = part.split_once('=') else {
        return err(line, format!("bad check {part}"));
    };
    let lhs = lhs.trim();
    let value: u32 = rhs.trim().parse().map_err(|_| LitmusParseError {
        line,
        message: format!("bad value {rhs}"),
    })?;
    if let Some(rest) = lhs.strip_prefix("ok") {
        let txn_id = rest.parse().map_err(|_| LitmusParseError {
            line,
            message: format!("bad ok flag {lhs}"),
        })?;
        if value != 1 {
            return err(line, "ok flags are checked against 1");
        }
        return Ok(Check::TxnOk { txn_id });
    }
    if let Some((tid, reg)) = lhs.split_once(":r") {
        let tid = tid.parse().map_err(|_| LitmusParseError {
            line,
            message: format!("bad thread id {lhs}"),
        })?;
        let reg = reg.parse().map_err(|_| LitmusParseError {
            line,
            message: format!("bad register {lhs}"),
        })?;
        return Ok(Check::Reg { tid, reg, value });
    }
    Ok(Check::Loc {
        loc: parse_loc(lhs, line)?,
        value,
    })
}

/// Parse the pseudocode litmus format.
pub fn parse_litmus(src: &str) -> Result<LitmusTest, LitmusParseError> {
    let mut name = String::new();
    let mut arch = Arch::Sc;
    let mut threads: Vec<Vec<Instr>> = Vec::new();
    let mut post = Vec::new();
    let mut next_txn = 0usize;
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if i == 0 {
            // "name (Arch)"
            let (n, a) = line.rsplit_once('(').unwrap_or((line, "SC)"));
            name = n.trim().to_string();
            arch = match a.trim_end_matches(')').trim() {
                "SC" => Arch::Sc,
                "x86" => Arch::X86,
                "Power" => Arch::Power,
                "ARMv8" => Arch::Armv8,
                "C++" => Arch::Cpp,
                other => return err(lineno, format!("unknown architecture {other}")),
            };
            continue;
        }
        if line.starts_with("Initially:") {
            continue; // all locations start at zero by convention
        }
        if let Some(rest) = line.strip_prefix("Test:") {
            for part in rest.split("/\\") {
                post.push(parse_check(part, lineno)?);
            }
            continue;
        }
        if line.starts_with("thread ") && line.ends_with(':') {
            threads.push(Vec::new());
            continue;
        }
        // An instruction line, possibly with a deps comment.
        let Some(thread) = threads.last_mut() else {
            return err(lineno, "instruction before any thread header");
        };
        let (code, comment) = match line.split_once("//") {
            Some((c, k)) => (c.trim(), k),
            None => (line, ""),
        };
        let deps = parse_deps(comment, lineno)?;
        let op = if let Some(rest) = code.strip_prefix("txbegin") {
            let atomic = rest.starts_with(".atomic");
            let txn_id = next_txn;
            next_txn += 1;
            Op::TxBegin { txn_id, atomic }
        } else if code == "txend" {
            Op::TxEnd
        } else if let Some((f, a)) = parse_fence(code) {
            Op::Fence(f, a)
        } else if code.ends_with("()") {
            match code.trim_end_matches("()") {
                s @ ("L" | "U" | "Lt" | "Ut") => Op::LockCall(match s {
                    "L" => "L",
                    "U" => "U",
                    "Lt" => "Lt",
                    _ => "Ut",
                }),
                other => return err(lineno, format!("unknown call {other}")),
            }
        } else if let Some((lhs, rhs)) = code.split_once("<-") {
            let lhs = lhs.trim();
            let rhs = rhs.trim();
            if let Some(reg) = lhs.strip_prefix('r') {
                if let Ok(reg) = reg.parse::<usize>() {
                    // rN <- loc[.mode]
                    let (locname, suffix) = match rhs.split_once('.') {
                        Some((l, s)) => (l, s),
                        None => (rhs, ""),
                    };
                    let mode = parse_mode(suffix, true, lineno)?;
                    thread.push(Instr {
                        op: Op::Load {
                            reg,
                            loc: parse_loc(locname, lineno)?,
                            mode,
                        },
                        deps,
                    });
                    continue;
                }
            }
            // loc[.mode] <- value
            let (locname, suffix) = match lhs.split_once('.') {
                Some((l, s)) => (l, s),
                None => (lhs, ""),
            };
            let mode = parse_mode(suffix, true, lineno)?;
            let value = rhs.parse::<u32>().map_err(|_| LitmusParseError {
                line: lineno,
                message: format!("bad store value {rhs}"),
            })?;
            thread.push(Instr {
                op: Op::Store {
                    loc: parse_loc(locname, lineno)?,
                    value,
                    mode,
                },
                deps,
            });
            continue;
        } else {
            return err(lineno, format!("unrecognised instruction {code:?}"));
        };
        thread.push(Instr { op, deps });
    }
    Ok(LitmusTest {
        name,
        arch,
        threads,
        post,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_exec::litmus_from_execution;
    use crate::render::pseudocode;
    use txmm_models::catalog;

    fn roundtrip(x: &txmm_core::Execution, arch: Arch, name: &str) {
        let t = litmus_from_execution(name, x, arch);
        let printed = pseudocode(&t);
        let back = parse_litmus(&printed).unwrap_or_else(|e| panic!("{name}: {e}\n{printed}"));
        assert_eq!(back, t, "{name} round-trip\n{printed}");
    }

    #[test]
    fn roundtrip_catalog() {
        roundtrip(&catalog::fig1(), Arch::X86, "fig1");
        roundtrip(&catalog::fig2(), Arch::X86, "fig2");
        roundtrip(
            &catalog::sb(Some(txmm_core::Fence::MFence), false, false),
            Arch::X86,
            "sb+mfence",
        );
        roundtrip(
            &catalog::mp(Some(txmm_core::Fence::Sync), true, false),
            Arch::Power,
            "mp",
        );
        roundtrip(&catalog::power_exec3(true), Arch::Power, "iriw");
        roundtrip(&catalog::armv8_elision(false), Arch::Armv8, "elision");
        roundtrip(&catalog::rmw_txn(true), Arch::Power, "rmw-split");
    }

    #[test]
    fn parse_handwritten() {
        let src = "demo (x86)\n\
                   Initially: x = 0, y = 0\n\
                   thread 0:\n\
                   \u{20} x <- 1\n\
                   \u{20} MFENCE\n\
                   \u{20} r0 <- y\n\
                   thread 1:\n\
                   \u{20} y <- 1\n\
                   \u{20} r0 <- x\n\
                   Test: 0:r0 = 0 /\\ 1:r0 = 0\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(t.arch, Arch::X86);
        assert_eq!(t.threads.len(), 2);
        assert_eq!(t.threads[0].len(), 3);
        assert_eq!(t.post.len(), 2);
        assert!(matches!(t.threads[0][1].op, Op::Fence(Fence::MFence, _)));
    }

    #[test]
    fn parse_txn_and_co_checks() {
        let src = "t (Power)\n\
                   thread 0:\n\
                   \u{20} txbegin (fail: ok0 <- 0)\n\
                   \u{20} x <- 1\n\
                   \u{20} txend\n\
                   Test: ok0 = 1 /\\ co(x) = [1,2]\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(t.num_txns(), 1);
        assert!(t.post.contains(&Check::TxnOk { txn_id: 0 }));
        assert!(t.post.contains(&Check::CoSeq {
            loc: 0,
            values: vec![1, 2]
        }));
    }

    #[test]
    fn parse_atomic_txn_marker() {
        let src = "t (C++)\n\
                   thread 0:\n\
                   \u{20} txbegin.atomic (fail: ok0 <- 0)\n\
                   \u{20} x <- 1\n\
                   \u{20} txend\n\
                   \u{20} txbegin (fail: ok1 <- 0)\n\
                   \u{20} y <- 1\n\
                   \u{20} txend\n\
                   Test: ok0 = 1 /\\ ok1 = 1\n";
        let t = parse_litmus(src).expect("parses");
        assert!(matches!(
            t.threads[0][0].op,
            Op::TxBegin { atomic: true, .. }
        ));
        assert!(matches!(
            t.threads[0][3].op,
            Op::TxBegin { atomic: false, .. }
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_litmus("t (Marvel)\n").is_err());
        assert!(
            parse_litmus("t (x86)\n  x <- 1\n").is_err(),
            "instruction before thread"
        );
        let bad = "t (x86)\nthread 0:\n  flibber\n";
        let e = parse_litmus(bad).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn parsed_tests_run_on_simulators() {
        let src = "sb (x86)\n\
                   thread 0:\n\
                   \u{20} x <- 1\n\
                   \u{20} r0 <- y\n\
                   thread 1:\n\
                   \u{20} y <- 1\n\
                   \u{20} r0 <- x\n\
                   Test: 0:r0 = 0 /\\ 1:r0 = 0\n";
        let t = parse_litmus(src).expect("parses");
        // Not asserting observability here to avoid a hwsim dev-dep
        // cycle; structural checks suffice (the integration suite runs
        // parsed tests on simulators).
        assert_eq!(t.len(), 4);
    }
}
