//! # txmm-litmus
//!
//! Litmus-test construction from executions (§2.2, §3.2 of the paper)
//! and rendering to pseudocode or per-architecture assembly.
//!
//! The key entry point is [`litmus_from_execution`]: given a candidate
//! execution, it builds the program-with-postcondition whose
//! postcondition passes exactly when that execution is taken — unique
//! write values pin `rf`, final-state checks pin `co`, and per-
//! transaction `ok` flags check that transactions committed.
//!
//! ```
//! use txmm_litmus::{litmus_from_execution, render};
//! use txmm_models::{catalog, Arch};
//!
//! let t = litmus_from_execution("fig2", &catalog::fig2(), Arch::X86);
//! let listing = render::assembly(&t);
//! assert!(listing.contains("XBEGIN"));
//! ```

pub mod ast;
pub mod from_exec;
pub mod outcomes;
pub mod parse;
pub mod render;
pub mod to_exec;

pub use ast::{AccessMode, Check, Dep, DepKind, Instr, LitmusTest, Op, Reg};
pub use from_exec::{litmus_from_execution, read_values, write_values};
pub use outcomes::{
    candidate_count, candidates, enumerate_candidates, enumerate_candidates_pruned,
    enumerate_mask_pruned, mask_candidate_count, program_key, Candidate, ProgramSkeleton,
};
pub use parse::{parse_litmus, LitmusParseError};
pub use to_exec::{execution_from_litmus, LitmusConvertError};
