//! Exhaustive candidate-execution enumeration for litmus *programs* —
//! the herd-style outcome engine's front half.
//!
//! [`crate::to_exec::execution_from_litmus`] rebuilds the *one*
//! candidate execution a verdict-pinning postcondition identifies. This
//! module answers the complementary, program-level question: given the
//! instructions alone, what are **all** the well-formed candidate
//! executions? Every reads-from assignment (each read observes any
//! same-location write or the initial value), every per-location
//! coherence order, and — when the program contains transactions —
//! every commit/abort split contribute one candidate, each paired with
//! the final state (registers, memory, coherence log, commit flags) it
//! produces. Memory models then filter the candidates; the surviving
//! final states are the model's *allowed outcomes* for the program,
//! which is how herd-style tools answer "which final states does model
//! M allow for this test?" rather than "is this one execution
//! consistent?".
//!
//! The enumeration is deliberately model-free and allocation-light; the
//! checking half (per-model allowed sets, canonical-class pruning,
//! caching, the serving wire-up) lives in `txmm::outcomes`.
//!
//! Aborted transactions follow the hardware convention the simulators
//! implement: a rolled-back transaction contributes **no events** to
//! the candidate (its writes never reach coherence) and its `ok` flag
//! reads 0. Registers loaded inside an aborted transaction are reported
//! as 0 here; callers comparing against an operational simulator that
//! leaks pre-abort register values must normalise both sides (see
//! `txmm::outcomes::normalise_outcome`).

use std::collections::HashMap;

use txmm_core::{
    judge_batch, Event, EventId, EventSet, Execution, Loc, PartialCandidate, PruneOracle,
    PruneStats, Rel, TxnClass, MAX_EVENTS,
};

use crate::ast::{AccessMode, DepKind, LitmusTest, Op};
use crate::to_exec::LitmusConvertError;

/// The postcondition-independent part of a litmus test, built once and
/// shared by the pinned-execution reconstruction
/// ([`crate::execution_from_litmus`]) and the exhaustive candidate
/// enumerator: events in program order, the program-given relations
/// (`po`, dependencies, `rmw`), the transaction classes, and the value
/// bookkeeping that links events back to registers and store values.
#[derive(Debug, Clone)]
pub struct ProgramSkeleton {
    /// Events, thread-major in program order.
    pub events: Vec<Event>,
    /// Program order.
    pub po: Rel,
    /// Address dependencies.
    pub addr: Rel,
    /// Control dependencies.
    pub ctrl: Rel,
    /// Data dependencies.
    pub data: Rel,
    /// Read-modify-write pairs.
    pub rmw: Rel,
    /// Non-empty transaction classes with their litmus-level ids.
    pub txns: Vec<(usize, TxnClass)>,
    /// Per location: `(value, write event)` in program order.
    pub writes_by_loc: HashMap<Loc, Vec<(u32, EventId)>>,
    /// `(tid, reg)` → the read event that loads into it (the last such
    /// load in program order, matching the simulators' register files).
    pub reg_event: HashMap<(usize, usize), EventId>,
    /// Write event → its store value (0 for non-writes).
    pub value_of: Vec<u32>,
    /// Read event → the `(tid, reg)` it loads into.
    pub reg_of: Vec<Option<(usize, usize)>>,
    /// Per-thread register-file size (max register index + 1).
    pub nregs: Vec<usize>,
    /// Litmus-level transaction count (`ok` flag vector length).
    pub num_txns: usize,
}

impl ProgramSkeleton {
    /// Build the skeleton: pass 1 of the litmus → execution conversion.
    ///
    /// Enforces the unique-non-zero write-value discipline the
    /// generator follows (§2.2) — it is what makes `rf` identifiable
    /// from register values and outcome tables meaningful.
    pub fn from_litmus(t: &LitmusTest) -> Result<ProgramSkeleton, LitmusConvertError> {
        let num_events = t
            .threads
            .iter()
            .flatten()
            .filter(|i| !matches!(i.op, Op::TxBegin { .. } | Op::TxEnd))
            .count();
        if num_events > MAX_EVENTS {
            return Err(LitmusConvertError::TooManyEvents(num_events));
        }

        let mut events: Vec<Event> = Vec::new();
        let mut reg_event: HashMap<(usize, usize), EventId> = HashMap::new();
        let mut writes_by_loc: HashMap<Loc, Vec<(u32, EventId)>> = HashMap::new();
        let mut instr_event: HashMap<(usize, usize), EventId> = HashMap::new();
        let mut txns: Vec<(usize, TxnClass)> = Vec::new();
        let mut deps: Vec<(DepKind, EventId, EventId)> = Vec::new();
        let mut rmw_pairs: Vec<(EventId, EventId)> = Vec::new();
        let mut value_of: Vec<u32> = Vec::new();
        let mut reg_of: Vec<Option<(usize, usize)>> = Vec::new();
        let mut nregs: Vec<usize> = vec![0; t.threads.len()];

        let attrs_of = |m: &AccessMode| {
            use txmm_core::Attrs;
            let mut a = Attrs::NONE;
            if m.acquire {
                a = a.union(Attrs::ACQ);
            }
            if m.release {
                a = a.union(Attrs::REL);
            }
            if m.sc {
                a = a.union(Attrs::SC);
            }
            if m.atomic {
                a = a.union(Attrs::ATO);
            }
            a
        };

        for (tid, instrs) in t.threads.iter().enumerate() {
            let mut open_txn: Option<(usize, Vec<EventId>, bool)> = None;
            let mut pending_exclusive: Option<(EventId, Loc)> = None;
            for (idx, instr) in instrs.iter().enumerate() {
                let ev = match &instr.op {
                    Op::Load { reg, loc, mode } => {
                        let e = events.len();
                        reg_event.insert((tid, *reg), e);
                        nregs[tid] = nregs[tid].max(*reg + 1);
                        if mode.exclusive {
                            if pending_exclusive.is_some() {
                                return Err(LitmusConvertError::UnpairedExclusive(tid));
                            }
                            pending_exclusive = Some((e, *loc));
                        }
                        value_of.push(0);
                        reg_of.push(Some((tid, *reg)));
                        Some(Event {
                            kind: txmm_core::EventKind::Read,
                            tid: tid as u8,
                            loc: Some(*loc),
                            attrs: attrs_of(mode),
                        })
                    }
                    Op::Store { loc, value, mode } => {
                        let e = events.len();
                        if *value == 0 {
                            return Err(LitmusConvertError::ZeroWriteValue(*loc));
                        }
                        let per_loc = writes_by_loc.entry(*loc).or_default();
                        if per_loc.iter().any(|&(v, _)| v == *value) {
                            return Err(LitmusConvertError::AmbiguousWriteValue(*loc, *value));
                        }
                        per_loc.push((*value, e));
                        if mode.exclusive {
                            match pending_exclusive.take() {
                                Some((r, l)) if l == *loc => rmw_pairs.push((r, e)),
                                _ => return Err(LitmusConvertError::UnpairedExclusive(tid)),
                            }
                        }
                        value_of.push(*value);
                        reg_of.push(None);
                        Some(Event {
                            kind: txmm_core::EventKind::Write,
                            tid: tid as u8,
                            loc: Some(*loc),
                            attrs: attrs_of(mode),
                        })
                    }
                    Op::Fence(f, attrs) => {
                        value_of.push(0);
                        reg_of.push(None);
                        Some(Event {
                            kind: txmm_core::EventKind::Fence(*f),
                            tid: tid as u8,
                            loc: None,
                            attrs: *attrs,
                        })
                    }
                    Op::LockCall(sym) => {
                        let call = match *sym {
                            "L" => txmm_core::Call::Lock,
                            "U" => txmm_core::Call::Unlock,
                            "Lt" => txmm_core::Call::TLock,
                            _ => txmm_core::Call::TUnlock,
                        };
                        value_of.push(0);
                        reg_of.push(None);
                        Some(Event::call(tid as u8, call))
                    }
                    Op::TxBegin { txn_id, atomic } => {
                        open_txn = Some((*txn_id, Vec::new(), *atomic));
                        None
                    }
                    Op::TxEnd => {
                        if let Some((txn_id, evs, atomic)) = open_txn.take() {
                            if !evs.is_empty() {
                                txns.push((
                                    txn_id,
                                    TxnClass {
                                        events: evs,
                                        atomic,
                                    },
                                ));
                            }
                        }
                        None
                    }
                };
                if let Some(ev) = ev {
                    let e = events.len();
                    instr_event.insert((tid, idx), e);
                    if let Some((_, evs, _)) = open_txn.as_mut() {
                        evs.push(e);
                    }
                    for d in &instr.deps {
                        let src = *instr_event
                            .get(&(tid, d.on))
                            .ok_or(LitmusConvertError::BadDepTarget(tid, d.on))?;
                        deps.push((d.kind, src, e));
                    }
                    events.push(ev);
                }
            }
            if pending_exclusive.is_some() {
                return Err(LitmusConvertError::UnpairedExclusive(tid));
            }
            // An unterminated transaction still closes at thread end.
            if let Some((txn_id, evs, atomic)) = open_txn.take() {
                if !evs.is_empty() {
                    txns.push((
                        txn_id,
                        TxnClass {
                            events: evs,
                            atomic,
                        },
                    ));
                }
            }
        }

        let n = events.len();
        let mut po = Rel::empty(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if events[a].tid == events[b].tid {
                    po.add(a, b);
                }
            }
        }
        let mut addr = Rel::empty(n);
        let mut ctrl = Rel::empty(n);
        let mut data = Rel::empty(n);
        for (kind, a, b) in deps {
            match kind {
                DepKind::Addr => addr.add(a, b),
                DepKind::Ctrl => ctrl.add(a, b),
                DepKind::Data => data.add(a, b),
            }
        }
        let mut rmw = Rel::empty(n);
        for (r, w) in rmw_pairs {
            rmw.add(r, w);
        }

        Ok(ProgramSkeleton {
            events,
            po,
            addr,
            ctrl,
            data,
            rmw,
            txns,
            writes_by_loc,
            reg_event,
            value_of,
            reg_of,
            nregs,
            num_txns: t.num_txns(),
        })
    }

    /// Number of events in the fully-committed program.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the program has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Highest location index accessed, if any.
    pub fn max_loc(&self) -> Option<Loc> {
        self.events.iter().filter_map(|e| e.loc).max()
    }
}

/// One enumerated candidate: the execution plus the final state it
/// yields under the program's store values.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The candidate execution graph.
    pub exec: Execution,
    /// `regs[tid][reg]` at exit (0 for never-written and aborted-load
    /// registers).
    pub regs: Vec<Vec<u32>>,
    /// Final memory, indexed by location (length `max_loc + 1`).
    pub memory: Vec<u32>,
    /// Per litmus-level transaction: did it commit in this candidate?
    pub txn_ok: Vec<bool>,
    /// Values written to each location in coherence order.
    pub co_order: Vec<Vec<u32>>,
    /// Bitmask over [`ProgramSkeleton::txns`] classes aborted here
    /// (at most [`txmm_core::MAX_EVENTS`] single-event classes fit a
    /// program, so `u64` covers every mask).
    pub aborted: u64,
}

/// How many candidates [`enumerate_candidates`] will visit:
/// `Σ_splits Π_loc |writes(loc)|! × Π_read (|writes(loc(read))| + 1)`
/// over the `2^txns` abort splits (aborted transactions shrink both
/// factors). Cheap and **saturating**: programs whose count exceeds
/// `u128::MAX` — or whose abort-split count alone would take longer to
/// sum than any caller's cap admits — report `u128::MAX`, which every
/// sane cap refuses. This is what lets servers refuse oversized
/// programs before enumerating anything.
pub fn candidate_count(t: &LitmusTest) -> Result<u128, LitmusConvertError> {
    let sk = ProgramSkeleton::from_litmus(t)?;
    // Every abort split contributes at least one candidate, so past 20
    // transactions the count is at least 2^20; saturate instead of
    // walking an astronomic mask space just to add it up.
    if sk.txns.len() > 20 {
        return Ok(u128::MAX);
    }
    let splits = 1u64 << sk.txns.len();
    let mut total = 0u128;
    for mask in 0..splits {
        total = total.saturating_add(count_for_mask(&sk, mask));
    }
    Ok(total)
}

fn factorial(n: usize) -> u128 {
    let mut out = 1u128;
    for k in 1..=n as u128 {
        out = out.saturating_mul(k);
    }
    out
}

fn aborted_events(sk: &ProgramSkeleton, mask: u64) -> Vec<bool> {
    let mut out = vec![false; sk.len()];
    for (i, (_, class)) in sk.txns.iter().enumerate() {
        if mask & (1 << i) != 0 {
            for &e in &class.events {
                out[e] = true;
            }
        }
    }
    out
}

fn count_for_mask(sk: &ProgramSkeleton, mask: u64) -> u128 {
    let dead = aborted_events(sk, mask);
    let mut writes_at = HashMap::new();
    for (&loc, ws) in &sk.writes_by_loc {
        let live = ws.iter().filter(|&&(_, e)| !dead[e]).count();
        writes_at.insert(loc, live);
    }
    let mut total: u128 = 1;
    for &live in writes_at.values() {
        total = total.saturating_mul(factorial(live));
    }
    for (e, ev) in sk.events.iter().enumerate() {
        if ev.is_read() && !dead[e] {
            let loc = ev.loc.expect("read has a location");
            total = total.saturating_mul((*writes_at.get(&loc).unwrap_or(&0) + 1) as u128);
        }
    }
    total
}

/// One abort split of a program, projected onto its committed events:
/// the fixed structure both enumerators (plain and pruned) walk.
struct MaskedProgram {
    n: usize,
    events: Vec<Event>,
    po: Rel,
    addr: Rel,
    ctrl: Rel,
    data: Rel,
    rmw: Rel,
    txns: Vec<TxnClass>,
    /// Per litmus-level transaction: committed under this mask?
    txn_ok: Vec<bool>,
    /// Committed writes per location (value, new id), program order,
    /// locations ascending.
    live_writes: Vec<(Loc, Vec<(u32, EventId)>)>,
    /// Committed reads (new id, loc, old id), program order.
    reads: Vec<(EventId, Loc, EventId)>,
    /// Per read: index into `live_writes` of its location, if any.
    read_lw: Vec<Option<usize>>,
    /// Per read: rf choice count — 1 (initial value) + live writes at
    /// its location.
    rf_arity: Vec<usize>,
}

impl MaskedProgram {
    fn project(sk: &ProgramSkeleton, mask: u64) -> MaskedProgram {
        let dead = aborted_events(sk, mask);
        // Old → new event ids over the committed events.
        let mut remap = vec![None; sk.len()];
        let mut events = Vec::new();
        for (e, ev) in sk.events.iter().enumerate() {
            if !dead[e] {
                remap[e] = Some(events.len());
                events.push(*ev);
            }
        }
        let n = events.len();
        let project = |r: &Rel| -> Rel {
            let mut out = Rel::empty(n);
            for (a, b) in r.pairs() {
                if let (Some(a2), Some(b2)) = (remap[a], remap[b]) {
                    out.add(a2, b2);
                }
            }
            out
        };
        let txns: Vec<TxnClass> = sk
            .txns
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) == 0)
            .map(|(_, (_, class))| TxnClass {
                events: class
                    .events
                    .iter()
                    .map(|&e| remap[e].expect("committed txn event survives"))
                    .collect(),
                atomic: class.atomic,
            })
            .collect();
        let mut txn_ok = vec![true; sk.num_txns];
        for (i, (txn_id, _)) in sk.txns.iter().enumerate() {
            if mask & (1 << i) != 0 {
                txn_ok[*txn_id] = false;
            }
        }

        let mut locs: Vec<Loc> = sk.writes_by_loc.keys().copied().collect();
        locs.sort_unstable();
        let live_writes: Vec<(Loc, Vec<(u32, EventId)>)> = locs
            .iter()
            .map(|&l| {
                (
                    l,
                    sk.writes_by_loc[&l]
                        .iter()
                        .filter(|&&(_, e)| !dead[e])
                        .map(|&(v, e)| (v, remap[e].expect("committed write survives")))
                        .collect(),
                )
            })
            .collect();
        let reads: Vec<(EventId, Loc, EventId)> = sk
            .events
            .iter()
            .enumerate()
            .filter(|&(e, ev)| ev.is_read() && !dead[e])
            .map(|(e, ev)| (remap[e].expect("committed"), ev.loc.expect("read"), e))
            .collect();

        // Per read: the index of its location's live-write list (if
        // any), and its rf arity — 0 = initial, k = k-th committed
        // write in program order. Both depend only on the abort mask,
        // so they are hoisted out of the permutation/rf hot loops.
        let read_lw: Vec<Option<usize>> = reads
            .iter()
            .map(|&(_, loc, _)| live_writes.iter().position(|(l, _)| *l == loc))
            .collect();
        let rf_arity: Vec<usize> = read_lw
            .iter()
            .map(|lw| lw.map(|i| live_writes[i].1.len()).unwrap_or(0) + 1)
            .collect();

        MaskedProgram {
            n,
            events,
            po: project(&sk.po),
            addr: project(&sk.addr),
            ctrl: project(&sk.ctrl),
            data: project(&sk.data),
            rmw: project(&sk.rmw),
            txns,
            txn_ok,
            live_writes,
            reads,
            read_lw,
            rf_arity,
        }
    }

    /// The split's execution with `rf` and `co` still empty — the root
    /// of the candidate subtree this mask contributes.
    fn base_execution(&self) -> Execution {
        Execution::from_parts(
            self.events.clone(),
            self.po,
            self.addr,
            self.ctrl,
            self.data,
            self.rmw,
            Rel::empty(self.n),
            Rel::empty(self.n),
            self.txns.clone(),
        )
    }
}

/// Enumerate every candidate execution of the program, calling `f` once
/// per candidate; returns the number visited. Candidates stream in a
/// deterministic order: abort masks ascending, then coherence
/// permutations, then rf assignments (each in a fixed lexicographic
/// order).
pub fn enumerate_candidates(
    t: &LitmusTest,
    f: &mut dyn FnMut(Candidate),
) -> Result<usize, LitmusConvertError> {
    let sk = ProgramSkeleton::from_litmus(t)?;
    let nthreads = t.threads.len();
    let nlocs = sk.max_loc().map(|l| l as usize + 1).unwrap_or(0);
    // At most MAX_EVENTS (64) single-event classes fit a program, so
    // u64 masks cover every split; the u128 shift keeps the count of
    // splits representable at exactly 64 classes.
    let splits: u128 = 1u128 << sk.txns.len();
    let mut visited = 0usize;

    for mask in 0..splits {
        let mask = mask as u64;
        let MaskedProgram {
            n,
            events,
            po,
            addr,
            ctrl,
            data,
            rmw,
            txns,
            txn_ok,
            live_writes,
            reads,
            read_lw,
            rf_arity,
        } = MaskedProgram::project(&sk, mask);

        // Per-location coherence permutations, then per-read rf choices.
        let mut perms: Vec<Vec<usize>> = live_writes
            .iter()
            .map(|(_, ws)| (0..ws.len()).collect())
            .collect();
        loop {
            let mut rf_choice = vec![0usize; reads.len()];
            loop {
                let mut co = Rel::empty(n);
                let mut co_order = vec![Vec::new(); nlocs];
                let mut memory = vec![0u32; nlocs];
                for ((loc, ws), perm) in live_writes.iter().zip(&perms) {
                    for i in 0..perm.len() {
                        let (vi, ei) = ws[perm[i]];
                        co_order[*loc as usize].push(vi);
                        memory[*loc as usize] = vi;
                        for &pj in &perm[i + 1..] {
                            co.add(ei, ws[pj].1);
                        }
                    }
                }
                let mut rf = Rel::empty(n);
                let mut regs: Vec<Vec<u32>> =
                    (0..nthreads).map(|t| vec![0u32; sk.nregs[t]]).collect();
                for (ri, &(rnew, _loc, rold)) in reads.iter().enumerate() {
                    let v = if rf_choice[ri] == 0 {
                        0
                    } else {
                        let ws = &live_writes[read_lw[ri].expect("read of a written location")].1;
                        let (v, w) = ws[rf_choice[ri] - 1];
                        rf.add(w, rnew);
                        v
                    };
                    if let Some((tid, reg)) = sk.reg_of[rold] {
                        // Later loads into the same register win, as in
                        // the simulators' register files.
                        if sk.reg_event.get(&(tid, reg)) == Some(&rold) {
                            regs[tid][reg] = v;
                        }
                    }
                }
                let exec = Execution::from_parts(
                    events.clone(),
                    po,
                    addr,
                    ctrl,
                    data,
                    rmw,
                    rf,
                    co,
                    txns.clone(),
                );
                debug_assert!(exec.check_wf().is_ok(), "candidate must be well-formed");
                visited += 1;
                f(Candidate {
                    exec,
                    regs,
                    memory: memory.clone(),
                    txn_ok: txn_ok.clone(),
                    co_order: co_order.clone(),
                    aborted: mask,
                });
                // Next rf assignment (mixed-radix increment).
                let mut i = 0;
                loop {
                    if i == rf_choice.len() {
                        break;
                    }
                    rf_choice[i] += 1;
                    if rf_choice[i] < rf_arity[i] {
                        break;
                    }
                    rf_choice[i] = 0;
                    i += 1;
                }
                if rf_choice.iter().all(|&c| c == 0) {
                    break;
                }
            }
            // Next combination of per-location permutations
            // (mixed-radix: a wrapped location resets to the identity
            // and carries into the next).
            let mut l = 0;
            while l < perms.len() && !next_permutation(&mut perms[l]) {
                l += 1;
            }
            if l >= perms.len() {
                break;
            }
        }
    }
    Ok(visited)
}

/// Lexicographic next permutation in place; `false` (and a reset to the
/// identity) when `p` was the last one.
fn next_permutation(p: &mut [usize]) -> bool {
    if p.len() < 2 {
        return false;
    }
    let mut i = p.len() - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        p.sort_unstable();
        return false;
    }
    let mut j = p.len() - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

/// Collect every candidate (see [`enumerate_candidates`]).
pub fn candidates(t: &LitmusTest) -> Result<Vec<Candidate>, LitmusConvertError> {
    let mut out = Vec::new();
    enumerate_candidates(t, &mut |c| out.push(c))?;
    Ok(out)
}

/// Saturating `n!` in the skip-count arithmetic's width.
fn fact64(n: usize) -> u64 {
    let mut out = 1u64;
    for k in 1..=n as u64 {
        out = out.saturating_mul(k);
    }
    out
}

/// Enumerate only the candidates the model's [`PruneOracle`] cannot
/// rule out, abandoning doomed subtrees the moment a partial
/// `rf`/`co` assignment (or a whole abort split) closes a forbidden
/// cycle. Every candidate the oracle's model finds consistent **is**
/// visited — oracles are conservative, so pruning never loses an
/// allowed outcome — but `f` may also see candidates a full check
/// would reject (the oracle only runs the monotone fragment), so
/// callers must still verdict what they keep. Returns the visit count
/// and the [`PruneStats`] describing the work avoided.
///
/// The walk differs from [`enumerate_candidates`] in order (abort
/// masks *descending*, coherence placements and rf choices depth-
/// first) but visits a subset of the same candidates: with
/// [`txmm_core::NoPrune`] it is exactly the plain enumeration,
/// reordered.
///
/// Abort splits are checked once at their root (`rf = co = ∅`); for
/// [event-monotone](PruneOracle::event_monotone) oracles a dead
/// split's rejection also kills every split that commits a superset
/// of its events — those masks are skipped without projecting the
/// program, which is why masks descend (a superset-committing mask is
/// numerically smaller).
pub fn enumerate_candidates_pruned(
    t: &LitmusTest,
    oracle: &dyn PruneOracle,
    f: &mut dyn FnMut(Candidate),
) -> Result<(usize, PruneStats), LitmusConvertError> {
    let sk = ProgramSkeleton::from_litmus(t)?;
    let splits: u128 = 1u128 << sk.txns.len();
    let mut visited = 0usize;
    let mut stats = PruneStats::default();
    let mut dead_masks: Vec<u64> = Vec::new();

    for mask in (0..splits).rev() {
        let mask = mask as u64;
        // `mask | d == d` ⟺ aborted(mask) ⊆ aborted(d) ⟺ this split
        // commits every event (and transaction) the dead split `d`
        // committed, so `d`'s root rejection carries over. (The
        // `manual_contains` suggestion is a false positive: `d` is the
        // closure binding, not a free variable.)
        #[allow(clippy::manual_contains)]
        if dead_masks.iter().any(|&d| mask | d == d) {
            stats.subtrees_cut += 1;
            stats.candidates_skipped = stats
                .candidates_skipped
                .saturating_add(mask_candidate_count(&sk, mask));
            continue;
        }
        let (v, root_live) = enumerate_mask_pruned(&sk, mask, oracle, &mut stats, f);
        visited += v;
        if !root_live && oracle.event_monotone() {
            dead_masks.push(mask);
        }
    }
    Ok((visited, stats))
}

/// How many complete candidates the abort split `mask` contributes
/// (saturating at `u64::MAX`) — the skip-count a caller charges when it
/// discards the split wholesale (e.g. via dead-mask subsumption).
pub fn mask_candidate_count(sk: &ProgramSkeleton, mask: u64) -> u64 {
    count_for_mask(sk, mask).min(u64::MAX as u128) as u64
}

/// Walk **one** abort split of the program with oracle pruning: the
/// per-mask building block [`enumerate_candidates_pruned`] loops over,
/// exposed so callers can fan independent masks out over worker pools.
/// Returns the candidates visited and whether the split's *root*
/// (`rf = co = ∅`) survived the oracle — a `false` root from an
/// [event-monotone](PruneOracle::event_monotone) oracle also kills every
/// mask `m` with `m | mask == mask` (a split committing a superset of
/// these events), which is the caller's dead-mask subsumption rule. A
/// root rejection already charges `subtrees_cut`/`candidates_skipped`
/// into `stats`.
pub fn enumerate_mask_pruned(
    sk: &ProgramSkeleton,
    mask: u64,
    oracle: &dyn PruneOracle,
    stats: &mut PruneStats,
    f: &mut dyn FnMut(Candidate),
) -> (usize, bool) {
    let nthreads = sk.nregs.len();
    let nlocs = sk.max_loc().map(|l| l as usize + 1).unwrap_or(0);
    let mut visited = 0usize;
    let mp = MaskedProgram::project(sk, mask);
    let mut pc = PartialCandidate::with_oracle(mp.base_execution(), oracle);
    if !pc.viable(oracle, stats) {
        stats.subtrees_cut += 1;
        stats.candidates_skipped = stats
            .candidates_skipped
            .saturating_add(mask_candidate_count(sk, mask));
        return (0, false);
    }

    // Suffix products for exact skip counts: cutting after the
    // (k+1)-th placement at location `li` abandons
    // `(m_li-k-1)! × co_tail[li] × rf_all` complete candidates;
    // cutting at read `i` abandons `rf_tail[i]`.
    let nlw = mp.live_writes.len();
    let mut co_tail = vec![1u64; nlw + 1];
    for li in (0..nlw).rev() {
        co_tail[li] = co_tail[li + 1].saturating_mul(fact64(mp.live_writes[li].1.len()));
    }
    let nreads = mp.reads.len();
    let mut rf_tail = vec![1u64; nreads + 1];
    for i in (0..nreads).rev() {
        rf_tail[i] = rf_tail[i + 1].saturating_mul(mp.rf_arity[i] as u64);
    }
    let read_ws: Vec<EventSet> = mp
        .read_lw
        .iter()
        .map(|lw| match lw {
            Some(i) => EventSet::from_iter(mp.live_writes[*i].1.iter().map(|&(_, e)| e)),
            None => EventSet::default(),
        })
        .collect();

    let mut walk = PrunedWalk {
        sk,
        mp: &mp,
        oracle,
        mask,
        nthreads,
        co_tail,
        rf_tail,
        read_ws,
        co_orders: vec![Vec::new(); nlocs],
        rf_val: vec![0u32; nreads],
        visited: &mut visited,
        stats,
        f,
    };
    walk.place(&mut pc, 0, 0, EventSet::default());
    (visited, true)
}

/// The per-split depth-first state of [`enumerate_candidates_pruned`]:
/// coherence placements first (location by location, write by write),
/// then rf choices read by read, one viability check per edge batch.
struct PrunedWalk<'a> {
    sk: &'a ProgramSkeleton,
    mp: &'a MaskedProgram,
    oracle: &'a dyn PruneOracle,
    mask: u64,
    nthreads: usize,
    co_tail: Vec<u64>,
    rf_tail: Vec<u64>,
    /// Per read: the committed writes at its location.
    read_ws: Vec<EventSet>,
    /// Values placed so far, per location — the `co_order` under
    /// construction.
    co_orders: Vec<Vec<u32>>,
    /// Value each read currently observes.
    rf_val: Vec<u32>,
    visited: &'a mut usize,
    stats: &'a mut PruneStats,
    f: &'a mut dyn FnMut(Candidate),
}

impl PrunedWalk<'_> {
    /// Choose the write ranked `k` in location `li`'s coherence order
    /// (`used` = already-ranked writes as a bitmask over the
    /// live-write list, `placed` = their event ids). All sibling
    /// placements are probed first — the ones the delta state cannot
    /// decide are materialised and judged in one batched oracle call —
    /// and only then do the viable ones recurse, in the original order.
    fn place(&mut self, pc: &mut PartialCandidate, li: usize, used: u64, placed: EventSet) {
        if li == self.mp.live_writes.len() {
            return self.rf(pc, 0);
        }
        let mp = self.mp;
        let (loc, ref ws) = mp.live_writes[li];
        let k = used.count_ones() as usize;
        if k == ws.len() {
            return self.place(pc, li + 1, 0, EventSet::default());
        }
        let mut viable_mask = 0u64;
        let mut pend_slots: Vec<usize> = Vec::new();
        let mut batch: Vec<(Execution, Rel)> = Vec::new();
        pc.mark();
        for (j, &(_, e)) in ws.iter().enumerate() {
            if used & (1 << j) != 0 {
                continue;
            }
            pc.push_co(placed, e);
            match if placed.is_empty() {
                // The first write at a location adds no edges: nothing
                // to check yet.
                Some(true)
            } else {
                pc.probe(self.oracle, self.stats)
            } {
                Some(true) => viable_mask |= 1 << j,
                Some(false) => {}
                None => {
                    pend_slots.push(j);
                    batch.push(pc.materialise());
                }
            }
            pc.rewind();
        }
        if !batch.is_empty() {
            self.stats.record_batch(batch.len());
            let bits = judge_batch(self.oracle, &batch, self.stats);
            for (b, &j) in pend_slots.iter().enumerate() {
                if bits & (1 << b) != 0 {
                    viable_mask |= 1 << j;
                }
            }
        }
        for (j, &(v, e)) in ws.iter().enumerate() {
            if used & (1 << j) != 0 {
                continue;
            }
            if viable_mask & (1 << j) != 0 {
                pc.push_co(placed, e);
                self.co_orders[loc as usize].push(v);
                let mut placed2 = placed;
                placed2.insert(e);
                self.place(pc, li, used | (1 << j), placed2);
                self.co_orders[loc as usize].pop();
                pc.rewind();
            } else {
                self.stats.subtrees_cut += 1;
                let below = fact64(ws.len() - k - 1)
                    .saturating_mul(self.co_tail[li + 1])
                    .saturating_mul(self.rf_tail[0]);
                self.stats.candidates_skipped = self.stats.candidates_skipped.saturating_add(below);
            }
        }
        pc.release();
    }

    /// Apply rf choice `choice` for read `i` (0 = initial value);
    /// `true` when the choice added any edges worth checking.
    fn apply_rf(
        &mut self,
        pc: &mut PartialCandidate,
        i: usize,
        rnew: usize,
        choice: usize,
    ) -> bool {
        if choice == 0 {
            // Reading the initial value forces fr to every committed
            // write at the location (none ⇒ no-op).
            pc.assign_init_read(rnew, self.read_ws[i]);
            self.rf_val[i] = 0;
            !self.read_ws[i].is_empty()
        } else {
            let lw = self.mp.read_lw[i].expect("choice > 0 needs live writes");
            let (v, w) = self.mp.live_writes[lw].1[choice - 1];
            pc.assign_rf(w, rnew);
            self.rf_val[i] = v;
            true
        }
    }

    /// Choose where read `i` reads from (0 = initial value), batching
    /// the sibling choices like [`Self::place`].
    fn rf(&mut self, pc: &mut PartialCandidate, i: usize) {
        if i == self.mp.reads.len() {
            return self.leaf(pc);
        }
        let (rnew, _, _) = self.mp.reads[i];
        let arity = self.mp.rf_arity[i];
        let mut viable_mask = 0u64;
        let mut pend_slots: Vec<usize> = Vec::new();
        let mut batch: Vec<(Execution, Rel)> = Vec::new();
        pc.mark();
        for choice in 0..arity {
            let changed = self.apply_rf(pc, i, rnew, choice);
            match if changed {
                pc.probe(self.oracle, self.stats)
            } else {
                Some(true) // no new edges: nothing to check
            } {
                Some(true) => viable_mask |= 1 << choice,
                Some(false) => {}
                None => {
                    pend_slots.push(choice);
                    batch.push(pc.materialise());
                }
            }
            pc.rewind();
        }
        if !batch.is_empty() {
            self.stats.record_batch(batch.len());
            let bits = judge_batch(self.oracle, &batch, self.stats);
            for (b, &choice) in pend_slots.iter().enumerate() {
                if bits & (1 << b) != 0 {
                    viable_mask |= 1 << choice;
                }
            }
        }
        for choice in 0..arity {
            if viable_mask & (1 << choice) != 0 {
                self.apply_rf(pc, i, rnew, choice);
                self.rf(pc, i + 1);
                pc.rewind();
            } else {
                self.stats.subtrees_cut += 1;
                self.stats.candidates_skipped = self
                    .stats
                    .candidates_skipped
                    .saturating_add(self.rf_tail[i + 1]);
            }
        }
        pc.release();
    }

    /// Every choice made and every check passed: materialise the
    /// candidate.
    fn leaf(&mut self, pc: &mut PartialCandidate) {
        *self.visited += 1;
        let exec = pc.exec().clone();
        debug_assert!(exec.check_wf().is_ok(), "candidate must be well-formed");
        let nlocs = self.co_orders.len();
        let mut memory = vec![0u32; nlocs];
        for (loc, order) in self.co_orders.iter().enumerate() {
            if let Some(&v) = order.last() {
                memory[loc] = v;
            }
        }
        let mut regs: Vec<Vec<u32>> = (0..self.nthreads)
            .map(|t| vec![0u32; self.sk.nregs[t]])
            .collect();
        for (ri, &(_, _, rold)) in self.mp.reads.iter().enumerate() {
            if let Some((tid, reg)) = self.sk.reg_of[rold] {
                if self.sk.reg_event.get(&(tid, reg)) == Some(&rold) {
                    regs[tid][reg] = self.rf_val[ri];
                }
            }
        }
        (self.f)(Candidate {
            exec,
            regs,
            memory,
            txn_ok: self.mp.txn_ok.clone(),
            co_order: self.co_orders.clone(),
            aborted: self.mask,
        });
    }
}

/// A deterministic byte key identifying the *program* of a litmus test:
/// architecture, threads, instructions and dependency annotations — but
/// not the name or the postcondition. Tests that share a program (e.g.
/// the same shape asked about two final states) share outcome tables
/// under this key, which is what the serving layer caches by.
pub fn program_key(t: &LitmusTest) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(t.arch as u8);
    for thread in &t.threads {
        out.push(0xFE); // thread separator
        for instr in thread {
            match &instr.op {
                Op::Load { reg, loc, mode } => {
                    out.push(1);
                    out.push(*reg as u8);
                    out.push(*loc);
                    out.push(mode_byte(mode));
                }
                Op::Store { loc, value, mode } => {
                    out.push(2);
                    out.push(*loc);
                    out.extend_from_slice(&value.to_le_bytes());
                    out.push(mode_byte(mode));
                }
                Op::Fence(f, a) => {
                    use txmm_core::Attrs;
                    out.push(3);
                    out.push(*f as u8);
                    out.push(
                        (a.contains(Attrs::ACQ) as u8)
                            | (a.contains(Attrs::REL) as u8) << 1
                            | (a.contains(Attrs::SC) as u8) << 2
                            | (a.contains(Attrs::ATO) as u8) << 3,
                    );
                }
                Op::TxBegin { txn_id, atomic } => {
                    out.push(4);
                    out.push(*txn_id as u8);
                    out.push(*atomic as u8);
                }
                Op::TxEnd => out.push(5),
                Op::LockCall(s) => {
                    out.push(6);
                    out.extend_from_slice(s.as_bytes());
                }
            }
            for d in &instr.deps {
                out.push(0xFD);
                out.push(d.kind as u8);
                out.push(d.on as u8);
            }
        }
    }
    out
}

fn mode_byte(m: &AccessMode) -> u8 {
    (m.acquire as u8)
        | (m.release as u8) << 1
        | (m.sc as u8) << 2
        | (m.atomic as u8) << 3
        | (m.exclusive as u8) << 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_exec::litmus_from_execution;
    use crate::to_exec::execution_from_litmus;
    use txmm_core::ExecBuilder;
    use txmm_models::{catalog, Arch};

    fn sb_test() -> LitmusTest {
        litmus_from_execution("sb", &catalog::sb(None, false, false), Arch::X86)
    }

    #[test]
    fn sb_has_four_candidates() {
        // Two reads, one same-location write each: each read observes
        // the write or the initial value; no co choice.
        let t = sb_test();
        assert_eq!(candidate_count(&t).unwrap(), 4);
        let cs = candidates(&t).unwrap();
        assert_eq!(cs.len(), 4);
        for c in &cs {
            assert!(c.exec.check_wf().is_ok());
            assert_eq!(c.memory, vec![1, 1]);
            assert!(c.txn_ok.is_empty());
        }
        // All four register outcomes appear.
        let mut regs: Vec<Vec<Vec<u32>>> = cs.iter().map(|c| c.regs.clone()).collect();
        regs.sort();
        regs.dedup();
        assert_eq!(regs.len(), 4);
    }

    #[test]
    fn pinned_execution_is_among_the_candidates() {
        for x in [
            catalog::sb(None, false, false),
            catalog::mp(None, true, false),
            catalog::power_exec3(true),
            catalog::fig2(),
        ] {
            let arch = Arch::Power;
            let t = litmus_from_execution("t", &x, arch);
            let pinned = execution_from_litmus(&t).unwrap();
            let cs = candidates(&t).unwrap();
            assert!(
                cs.iter().any(|c| c.exec == pinned),
                "pinned execution must be enumerated"
            );
            // And exactly one candidate passes the pinning postcondition
            // among fully-committed candidates.
            let passing = cs
                .iter()
                .filter(|c| c.aborted == 0 && outcome_passes(c, &t))
                .count();
            assert_eq!(passing, 1, "postcondition pins one committed candidate");
        }
    }

    /// Minimal postcondition evaluation for the tests here (the real
    /// one lives on `txmm_hwsim::Outcome`, which this crate cannot
    /// depend on).
    fn outcome_passes(c: &Candidate, t: &LitmusTest) -> bool {
        use crate::ast::Check;
        t.post.iter().all(|chk| match chk {
            Check::Reg { tid, reg, value } => {
                c.regs
                    .get(*tid)
                    .and_then(|r| r.get(*reg))
                    .copied()
                    .unwrap_or(0)
                    == *value
            }
            Check::Loc { loc, value } => {
                c.memory.get(*loc as usize).copied().unwrap_or(0) == *value
            }
            Check::TxnOk { txn_id } => c.txn_ok.get(*txn_id).copied().unwrap_or(false),
            Check::CoSeq { loc, values } => {
                c.co_order
                    .get(*loc as usize)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                    == values.as_slice()
            }
        })
    }

    #[test]
    fn coherence_permutations_enumerated() {
        // Two writes to one location, no reads: the two coherence
        // orders are the only choice points.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w1 = b.write(t0, 0);
        let t1 = b.new_thread();
        let w2 = b.write(t1, 0);
        b.co(w1, w2);
        let x = b.build().unwrap();
        let t = litmus_from_execution("2w", &x, Arch::X86);
        let cs = candidates(&t).unwrap();
        assert_eq!(cs.len(), 2);
        let orders: Vec<Vec<u32>> = cs.iter().map(|c| c.co_order[0].clone()).collect();
        assert!(orders.contains(&vec![1, 2]));
        assert!(orders.contains(&vec![2, 1]));
        // Final memory follows the chosen coherence maximum.
        let mems: Vec<u32> = cs.iter().map(|c| c.memory[0]).collect();
        assert!(mems.contains(&1) && mems.contains(&2));
    }

    #[test]
    fn abort_splits_enumerated() {
        // One transaction: masks 0 (committed) and 1 (aborted). The
        // aborted split drops the transaction's events.
        let x = catalog::sb(None, true, false);
        let t = litmus_from_execution("sb+txn", &x, Arch::X86);
        let cs = candidates(&t).unwrap();
        let committed: Vec<_> = cs.iter().filter(|c| c.aborted == 0).collect();
        let aborted: Vec<_> = cs.iter().filter(|c| c.aborted == 1).collect();
        assert!(!committed.is_empty() && !aborted.is_empty());
        for c in &aborted {
            assert_eq!(c.txn_ok, vec![false]);
            assert_eq!(c.exec.txns().len(), 0);
            // The transactional thread's write never reaches memory.
            assert_eq!(c.exec.len(), 2, "only the plain thread's events remain");
        }
        for c in &committed {
            assert_eq!(c.txn_ok, vec![true]);
            assert_eq!(c.exec.txns().len(), 1);
        }
        assert_eq!(
            cs.len() as u128,
            candidate_count(&t).unwrap(),
            "count formula matches the enumeration"
        );
    }

    #[test]
    fn candidate_count_matches_enumeration_on_catalog() {
        for entry in catalog::all().into_iter().take(12) {
            let t = litmus_from_execution(entry.name, &entry.exec, Arch::Sc);
            let counted = candidate_count(&t).unwrap();
            if counted > 10_000 {
                continue;
            }
            let visited = enumerate_candidates(&t, &mut |_| {}).unwrap() as u128;
            assert_eq!(counted, visited, "{}", entry.name);
        }
    }

    #[test]
    fn oversized_counts_saturate_instead_of_overflowing() {
        use crate::ast::{AccessMode, Instr};
        // 7 same-location stores + 42 loads: 7! x 8^42 ~ 2^138 exceeds
        // u128; the closed-form count must saturate, not panic (debug)
        // or wrap (release).
        let stores: Vec<Instr> = (1..=7u32)
            .map(|v| {
                Instr::plain(Op::Store {
                    loc: 0,
                    value: v,
                    mode: AccessMode::default(),
                })
            })
            .collect();
        let loads: Vec<Instr> = (0..42usize)
            .map(|r| {
                Instr::plain(Op::Load {
                    reg: r,
                    loc: 0,
                    mode: AccessMode::default(),
                })
            })
            .collect();
        let t = LitmusTest {
            name: "wide".into(),
            arch: Arch::X86,
            threads: vec![stores, loads],
            post: vec![],
        };
        let count = candidate_count(&t).expect("counts");
        assert_eq!(count, u128::MAX, "saturated, not wrapped");
    }

    #[test]
    fn deep_transaction_masks_saturate_without_shift_overflow() {
        use crate::ast::{AccessMode, Instr};
        // 33 single-store transactions: more than a u32 mask holds. The
        // count must short-circuit (every split contributes >= 1
        // candidate) rather than shift-overflow or walk 2^33 masks.
        let mut instrs = Vec::new();
        for v in 1..=33u32 {
            instrs.push(Instr::plain(Op::TxBegin {
                txn_id: (v - 1) as usize,
                atomic: false,
            }));
            instrs.push(Instr::plain(Op::Store {
                loc: 0,
                value: v,
                mode: AccessMode::default(),
            }));
            instrs.push(Instr::plain(Op::TxEnd));
        }
        let t = LitmusTest {
            name: "deep".into(),
            arch: Arch::X86,
            threads: vec![instrs],
            post: vec![],
        };
        assert_eq!(candidate_count(&t).expect("counts"), u128::MAX);
    }

    /// A stable identity for a candidate: the full graph plus the
    /// final state, insensitive to enumeration order.
    fn cand_key(c: &Candidate) -> String {
        format!(
            "{:?}",
            (
                c.aborted,
                &c.regs,
                &c.memory,
                &c.co_order,
                &c.txn_ok,
                c.exec.rf().pairs().collect::<Vec<_>>(),
                c.exec.co().pairs().collect::<Vec<_>>(),
            )
        )
    }

    #[test]
    fn pruned_enumeration_with_noprune_is_plain_enumeration() {
        use txmm_core::NoPrune;
        for x in [
            catalog::sb(None, true, false),
            catalog::mp(None, true, false),
            catalog::fig2(),
        ] {
            let t = litmus_from_execution("t", &x, Arch::X86);
            let mut plain: Vec<String> = candidates(&t).unwrap().iter().map(cand_key).collect();
            let mut pruned = Vec::new();
            let (visited, stats) =
                enumerate_candidates_pruned(&t, &NoPrune, &mut |c| pruned.push(cand_key(&c)))
                    .unwrap();
            assert_eq!(visited as u128, candidate_count(&t).unwrap());
            assert_eq!(stats.subtrees_cut, 0);
            assert_eq!(stats.candidates_skipped, 0);
            plain.sort();
            pruned.sort();
            assert_eq!(plain, pruned, "NoPrune must reorder, not drop");
        }
    }

    #[test]
    fn pruning_never_loses_a_consistent_candidate() {
        use std::collections::BTreeSet;
        // Every native model doubles as its own oracle; the pruned
        // stream filtered by the full check must equal the plain
        // stream filtered the same way, and skip counts must be exact.
        for x in [
            catalog::sb(None, false, false),
            catalog::sb(None, true, true),
            catalog::mp(None, true, false),
            catalog::power_exec3(true),
        ] {
            let t = litmus_from_execution("t", &x, Arch::X86);
            let all = candidates(&t).unwrap();
            for m in txmm_models::registry::all_models() {
                let Some(oracle) = m.prune_oracle(true) else {
                    continue;
                };
                let mut kept = Vec::new();
                let (visited, stats) =
                    enumerate_candidates_pruned(&t, oracle, &mut |c| kept.push(c)).unwrap();
                assert_eq!(
                    visited as u64 + stats.candidates_skipped,
                    all.len() as u64,
                    "{}: every candidate is visited or accounted skipped",
                    m.name()
                );
                let plain_ok: BTreeSet<String> = all
                    .iter()
                    .filter(|c| m.consistent(&c.exec))
                    .map(cand_key)
                    .collect();
                let pruned_ok: BTreeSet<String> = kept
                    .iter()
                    .filter(|c| m.consistent(&c.exec))
                    .map(cand_key)
                    .collect();
                assert_eq!(plain_ok, pruned_ok, "{}", m.name());
            }
        }
    }

    #[test]
    fn program_key_ignores_name_and_postcondition() {
        let a = sb_test();
        let mut b = sb_test();
        b.name = "other".into();
        b.post.clear();
        assert_eq!(program_key(&a), program_key(&b));
        // But not the program itself.
        let mut c = sb_test();
        c.threads[0].push(crate::ast::Instr::plain(Op::Fence(
            txmm_core::Fence::MFence,
            txmm_core::Attrs::NONE,
        )));
        assert_ne!(program_key(&a), program_key(&c));
    }
}
