//! The litmus-test AST: programs with postconditions (§2.2).

use txmm_core::{Attrs, Fence, Loc};
use txmm_models::Arch;

/// A pseudo-register, local to a thread.
pub type Reg = usize;

/// How a dependency reaches an instruction (rendered as the standard
/// idioms: `eor`/`xor` for address, arithmetic for data, a conditional
/// branch for control).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Address dependency.
    Addr,
    /// Data dependency.
    Data,
    /// Control dependency.
    Ctrl,
}

/// A dependency annotation: this instruction depends on the value loaded
/// by an earlier instruction of the same thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Index of the source instruction within the thread.
    pub on: usize,
    /// The dependency kind.
    pub kind: DepKind,
}

/// Load/store strength flavours across all four targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessMode {
    /// ARMv8 `LDAR` / C++ acquire.
    pub acquire: bool,
    /// ARMv8 `STLR` / C++ release.
    pub release: bool,
    /// C++ seq-cst.
    pub sc: bool,
    /// C++ atomic operation.
    pub atomic: bool,
    /// Load/store-exclusive (half of an RMW pair).
    pub exclusive: bool,
}

impl AccessMode {
    /// Translate event attributes into an access mode.
    pub fn from_attrs(a: Attrs, exclusive: bool) -> AccessMode {
        AccessMode {
            acquire: a.contains(Attrs::ACQ),
            release: a.contains(Attrs::REL),
            sc: a.contains(Attrs::SC),
            atomic: a.contains(Attrs::ATO),
            exclusive,
        }
    }
}

/// One instruction of a litmus thread.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Load `loc` into `reg`.
    Load {
        reg: Reg,
        loc: Loc,
        mode: AccessMode,
    },
    /// Store `value` to `loc`.
    Store {
        loc: Loc,
        value: u32,
        mode: AccessMode,
    },
    /// A fence; C++ fences carry their mode.
    Fence(Fence, Attrs),
    /// Begin a transaction; on abort, control transfers to the fail
    /// handler which zeroes the `ok` flag for transaction `txn_id`.
    /// `atomic` marks a C++ `atomic { ... }` block (the paper's
    /// `stxnat` strengthening) as opposed to a relaxed /
    /// `synchronized` transaction.
    TxBegin { txn_id: usize, atomic: bool },
    /// Commit the current transaction.
    TxEnd,
    /// `lock()` / `unlock()` pseudo-calls (abstract executions, §8.3).
    LockCall(&'static str),
}

/// An instruction plus its dependency annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// The operation.
    pub op: Op,
    /// Dependencies on earlier instructions of the same thread.
    pub deps: Vec<Dep>,
}

impl Instr {
    /// An instruction with no dependencies.
    pub fn plain(op: Op) -> Instr {
        Instr {
            op,
            deps: Vec::new(),
        }
    }
}

/// One conjunct of a postcondition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Check {
    /// Register `reg` of thread `tid` holds `value`.
    Reg { tid: usize, reg: Reg, value: u32 },
    /// Location `loc` holds `value` finally.
    Loc { loc: Loc, value: u32 },
    /// Transaction `txn_id` committed (its `ok` flag is still 1).
    TxnOk { txn_id: usize },
    /// The full coherence order of `loc` is exactly `values`.
    ///
    /// Emitted when a location has three or more writes: the final-state
    /// check alone cannot pin the intermediate coherence edges
    /// (footnote 2 of the paper). Real test harnesses add observer
    /// threads; our simulated hardware exposes coherence directly.
    CoSeq { loc: Loc, values: Vec<u32> },
}

/// A litmus test: initial state (all locations zero), a program, and a
/// postcondition identifying one candidate execution.
#[derive(Debug, Clone, PartialEq)]
pub struct LitmusTest {
    /// A short name.
    pub name: String,
    /// The architecture whose instructions the test uses.
    pub arch: Arch,
    /// Per-thread instruction lists.
    pub threads: Vec<Vec<Instr>>,
    /// The conjunction that passes exactly when the intended execution
    /// was taken.
    pub post: Vec<Check>,
}

impl LitmusTest {
    /// Total number of instructions.
    pub fn len(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(Vec::is_empty)
    }

    /// Number of transactions in the program.
    pub fn num_txns(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .filter(|i| matches!(i.op, Op::TxBegin { .. }))
            .count()
    }

    /// The locations the program touches, sorted.
    pub fn locations(&self) -> Vec<Loc> {
        let mut locs: Vec<Loc> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|i| match i.op {
                Op::Load { loc, .. } | Op::Store { loc, .. } => Some(loc),
                _ => None,
            })
            .collect();
        locs.sort_unstable();
        locs.dedup();
        locs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mode_from_attrs() {
        let m = AccessMode::from_attrs(Attrs::ACQ.union(Attrs::ATO), true);
        assert!(m.acquire && m.atomic && m.exclusive);
        assert!(!m.release && !m.sc);
    }

    #[test]
    fn litmus_counts() {
        let t = LitmusTest {
            name: "t".into(),
            arch: Arch::X86,
            threads: vec![
                vec![
                    Instr::plain(Op::TxBegin {
                        txn_id: 0,
                        atomic: false,
                    }),
                    Instr::plain(Op::Store {
                        loc: 0,
                        value: 1,
                        mode: AccessMode::default(),
                    }),
                    Instr::plain(Op::TxEnd),
                ],
                vec![Instr::plain(Op::Load {
                    reg: 0,
                    loc: 1,
                    mode: AccessMode::default(),
                })],
            ],
            post: vec![Check::Loc { loc: 0, value: 1 }],
        };
        assert_eq!(t.len(), 4);
        assert_eq!(t.num_txns(), 1);
        assert_eq!(t.locations(), vec![0, 1]);
        assert!(!t.is_empty());
    }
}
