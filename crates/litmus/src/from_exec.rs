//! Constructing a litmus test from an execution (§2.2, §3.2).
//!
//! Each store writes a unique non-zero value per location; each read's
//! register is checked against the value of the write it observes (0 for
//! the initial value); the final value of every multi-write location pins
//! the coherence order; and each transaction contributes an `ok` flag
//! checked to be 1 (§3.2).

use txmm_core::{EventId, EventKind, Execution};
use txmm_models::Arch;

use crate::ast::{AccessMode, Check, Dep, DepKind, Instr, LitmusTest, Op};

/// Assign each write a value: 1 + its position in the coherence order of
/// its location (so the co-maximal write has the largest value).
pub fn write_values(x: &Execution) -> Vec<u32> {
    let mut vals = vec![0u32; x.len()];
    for l in x.locations() {
        let mut ws: Vec<EventId> = x.writes().inter(x.at_loc(l)).iter().collect();
        ws.sort_by(|&a, &b| {
            if x.co().contains(a, b) {
                std::cmp::Ordering::Less
            } else if x.co().contains(b, a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        for (i, &w) in ws.iter().enumerate() {
            vals[w] = (i + 1) as u32;
        }
    }
    vals
}

/// The value each read observes (0 when it reads the initial value).
pub fn read_values(x: &Execution) -> Vec<u32> {
    let wv = write_values(x);
    let mut vals = vec![0u32; x.len()];
    for (w, r) in x.rf().pairs() {
        vals[r] = wv[w];
    }
    vals
}

/// Convert an execution into a litmus test for `arch`.
///
/// The construction follows §2.2 extended with transactions per §3.2;
/// dependency edges become [`Dep`] annotations that the renderers expand
/// into the standard idioms and that the simulators enforce.
pub fn litmus_from_execution(name: &str, x: &Execution, arch: Arch) -> LitmusTest {
    let wv = write_values(x);
    let mut post = Vec::new();
    let mut threads = Vec::new();

    // Map event -> (thread, instruction index) for dependency targets.
    let mut instr_index = vec![(0usize, 0usize); x.len()];
    let mut next_txn = 0usize;

    for tid in 0..x.num_threads() {
        let mut instrs: Vec<Instr> = Vec::new();
        let mut next_reg = 0usize;
        let mut open_txn: Option<usize> = None;
        for e in x.thread_events(tid as u8) {
            // Close/open transactions at class boundaries (adjacent
            // transactions need an explicit TxEnd before the next
            // TxBegin).
            if let Some(ti) = x.txn_of(e) {
                if open_txn != Some(ti) {
                    if open_txn.is_some() {
                        instrs.push(Instr::plain(Op::TxEnd));
                    }
                    let txn_id = next_txn;
                    next_txn += 1;
                    instrs.push(Instr::plain(Op::TxBegin {
                        txn_id,
                        atomic: x.txns()[ti].atomic,
                    }));
                    post.push(Check::TxnOk { txn_id });
                    open_txn = Some(ti);
                }
            } else if open_txn.is_some() {
                instrs.push(Instr::plain(Op::TxEnd));
                open_txn = None;
            }

            let ev = x.event(e);
            let exclusive = x.rmw().domain().contains(e) || x.rmw().range().contains(e);
            let deps: Vec<Dep> = {
                let mut d = Vec::new();
                for (kind, rel) in [
                    (DepKind::Addr, x.addr()),
                    (DepKind::Data, x.data()),
                    (DepKind::Ctrl, x.ctrl()),
                ] {
                    for (src, dst) in rel.pairs() {
                        if dst == e {
                            d.push(Dep {
                                on: instr_index[src].1,
                                kind,
                            });
                        }
                    }
                }
                d
            };
            let op = match ev.kind {
                EventKind::Read => {
                    let reg = next_reg;
                    next_reg += 1;
                    let expected = x
                        .rf()
                        .inverse()
                        .row(e)
                        .iter()
                        .next()
                        .map(|w| wv[w])
                        .unwrap_or(0);
                    post.push(Check::Reg {
                        tid,
                        reg,
                        value: expected,
                    });
                    Op::Load {
                        reg,
                        loc: ev.loc.expect("read has a location"),
                        mode: AccessMode::from_attrs(ev.attrs, exclusive),
                    }
                }
                EventKind::Write => Op::Store {
                    loc: ev.loc.expect("write has a location"),
                    value: wv[e],
                    mode: AccessMode::from_attrs(ev.attrs, exclusive),
                },
                EventKind::Fence(f) => Op::Fence(f, ev.attrs),
                EventKind::Call(c) => Op::LockCall(c.symbol()),
            };
            instr_index[e] = (tid, instrs.len());
            instrs.push(Instr { op, deps });
        }
        if open_txn.is_some() {
            instrs.push(Instr::plain(Op::TxEnd));
        }
        threads.push(instrs);
    }

    // Pin the coherence order: final value of every location with >= 2
    // writes (the co-maximal write's value); with three or more writes
    // the intermediate edges also need pinning (footnote 2), which the
    // simulated hardware exposes as the full coherence sequence.
    for l in x.locations() {
        let ws = x.writes().inter(x.at_loc(l));
        if ws.len() >= 2 {
            let max = ws
                .iter()
                .max_by_key(|&w| wv[w])
                .expect("non-empty write set");
            post.push(Check::Loc {
                loc: l,
                value: wv[max],
            });
        }
        if ws.len() >= 3 {
            let mut ordered: Vec<u32> = ws.iter().map(|w| wv[w]).collect();
            ordered.sort_unstable();
            post.push(Check::CoSeq {
                loc: l,
                values: ordered,
            });
        }
    }

    LitmusTest {
        name: name.to_string(),
        arch,
        threads,
        post,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::ExecBuilder;
    use txmm_models::catalog;

    #[test]
    fn fig1_values_and_postcondition() {
        // Fig. 1: a: Wx(1); b: Rx observes c; c: Wx(2); co a->c.
        let x = catalog::fig1();
        let wv = write_values(&x);
        assert_eq!(wv[0], 1);
        assert_eq!(wv[2], 2);
        let t = litmus_from_execution("fig1", &x, Arch::X86);
        // Postcondition: r0 = 2 ∧ x = 2 (matching the figure).
        assert!(t.post.contains(&Check::Reg {
            tid: 0,
            reg: 0,
            value: 2
        }));
        assert!(t.post.contains(&Check::Loc { loc: 0, value: 2 }));
        assert_eq!(t.num_txns(), 0);
    }

    #[test]
    fn fig2_adds_ok_flag() {
        let x = catalog::fig2();
        let t = litmus_from_execution("fig2", &x, Arch::X86);
        assert_eq!(t.num_txns(), 1);
        assert!(t.post.contains(&Check::TxnOk { txn_id: 0 }));
        // Transaction bracketed: TxBegin before the write, TxEnd after
        // the read.
        let ops: Vec<_> = t.threads[0].iter().map(|i| &i.op).collect();
        assert!(matches!(ops[0], Op::TxBegin { .. }));
        assert!(matches!(ops.last().unwrap(), Op::TxEnd));
    }

    #[test]
    fn init_reads_expect_zero() {
        let x = catalog::sb(None, false, false);
        let t = litmus_from_execution("sb", &x, Arch::X86);
        let zero_regs = t
            .post
            .iter()
            .filter(|c| matches!(c, Check::Reg { value: 0, .. }))
            .count();
        assert_eq!(zero_regs, 2, "both SB reads observe initial values");
    }

    #[test]
    fn deps_annotated() {
        let x = catalog::mp(None, true, false);
        let t = litmus_from_execution("mp+dep", &x, Arch::Power);
        // Thread 1: Ry then Rx with an addr dep on instruction 0.
        let second = &t.threads[1][1];
        assert_eq!(
            second.deps,
            vec![Dep {
                on: 0,
                kind: DepKind::Addr
            }]
        );
    }

    #[test]
    fn exclusive_flag_set_for_rmw() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let w = b.write(t0, 0);
        b.rmw(r, w);
        let x = b.build().unwrap();
        let t = litmus_from_execution("rmw", &x, Arch::Armv8);
        for i in &t.threads[0] {
            match &i.op {
                Op::Load { mode, .. } | Op::Store { mode, .. } => assert!(mode.exclusive),
                _ => {}
            }
        }
    }

    #[test]
    fn middle_txn_brackets() {
        // A transaction in the middle of a thread gets both TxBegin and
        // TxEnd in the right places.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _w0 = b.write(t0, 0);
        let r = b.read(t0, 1);
        let w = b.write(t0, 2);
        b.txn(&[r, w]);
        let _r2 = b.read(t0, 3);
        let x = b.build().unwrap();
        let t = litmus_from_execution("mid", &x, Arch::X86);
        let ops: Vec<_> = t.threads[0].iter().map(|i| &i.op).collect();
        assert!(matches!(ops[0], Op::Store { .. }));
        assert!(matches!(ops[1], Op::TxBegin { .. }));
        assert!(matches!(ops[4], Op::TxEnd));
        assert!(matches!(ops[5], Op::Load { .. }));
    }

    #[test]
    fn co_pinned_only_with_multiple_writes() {
        let x = catalog::mp(None, false, false);
        let t = litmus_from_execution("mp", &x, Arch::Power);
        assert!(
            !t.post.iter().any(|c| matches!(c, Check::Loc { .. })),
            "single-write locations need no final check"
        );
    }
}
