//! Reconstructing the candidate execution a litmus test pins down —
//! the inverse of [`crate::from_exec::litmus_from_execution`].
//!
//! A litmus test in this workspace's format identifies exactly one
//! candidate execution (§2.2/§3.2 of the paper): write values are
//! unique per location, so a passing register check names the write a
//! read observed (`rf`), the sorted value order per location gives the
//! coherence order (`co`), dependency annotations give `addr`/`ctrl`/
//! `data`, exclusive access pairs give `rmw`, and `txbegin`/`txend`
//! brackets give the transaction classes. This module rebuilds that
//! execution, which is what lets a long-lived serving process answer
//! model verdicts for litmus *files* rather than only for in-memory
//! executions.

use std::collections::HashMap;
use std::fmt;

use txmm_core::{Attrs, Event, EventId, Execution, Loc, Rel, TxnClass, WfError, MAX_EVENTS};

use crate::ast::{AccessMode, Check, DepKind, LitmusTest, Op};

/// Why a litmus test does not determine a well-formed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LitmusConvertError {
    /// The program has more events than [`MAX_EVENTS`].
    TooManyEvents(usize),
    /// Two stores to one location share a value, so register checks
    /// cannot identify which write a read observed.
    AmbiguousWriteValue(Loc, u32),
    /// A store writes 0, the reserved initial value — a register check
    /// of 0 could then mean either the store or the initial value.
    ZeroWriteValue(Loc),
    /// A register check expects a value no store to that location
    /// writes.
    NoWriteWithValue(Loc, u32),
    /// A register check names a thread/register with no matching load.
    NoSuchRegister(usize, usize),
    /// A final-state check disagrees with the coherence order implied
    /// by the write values.
    InconsistentFinalState(Loc),
    /// A dependency annotation points at an instruction that is not an
    /// event (or not present).
    BadDepTarget(usize, usize),
    /// Exclusive accesses on a thread do not pair into rmw edges: a
    /// store-exclusive with no matching same-location load-exclusive,
    /// two load-exclusives in a row, or a load-exclusive never
    /// completed by a store-exclusive.
    UnpairedExclusive(usize),
    /// The reconstructed graph fails well-formedness.
    IllFormed(WfError),
}

impl fmt::Display for LitmusConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LitmusConvertError::TooManyEvents(n) => {
                write!(f, "program has {n} events (max {MAX_EVENTS})")
            }
            LitmusConvertError::AmbiguousWriteValue(l, v) => {
                write!(f, "two stores write {v} to location {l}")
            }
            LitmusConvertError::ZeroWriteValue(l) => {
                write!(
                    f,
                    "a store writes the reserved initial value 0 to location {l}"
                )
            }
            LitmusConvertError::NoWriteWithValue(l, v) => {
                write!(f, "no store writes {v} to location {l}")
            }
            LitmusConvertError::NoSuchRegister(t, r) => {
                write!(f, "check names unknown register {t}:r{r}")
            }
            LitmusConvertError::InconsistentFinalState(l) => {
                write!(
                    f,
                    "final-state check contradicts write values at location {l}"
                )
            }
            LitmusConvertError::BadDepTarget(t, i) => {
                write!(f, "dependency on non-event instruction {i} of thread {t}")
            }
            LitmusConvertError::UnpairedExclusive(t) => {
                write!(
                    f,
                    "exclusive accesses on thread {t} do not pair into rmw edges"
                )
            }
            LitmusConvertError::IllFormed(e) => write!(f, "reconstructed execution: {e}"),
        }
    }
}

impl std::error::Error for LitmusConvertError {}

/// Rebuild the candidate execution a litmus test identifies.
///
/// Reads with no register check observe the initial value (the
/// generator checks every read, so this default only applies to
/// hand-written tests). Transactions are reconstructed as successful
/// classes, preserving the C++ `atomic { ... }` marker so `stxnat`
/// round-trips.
pub fn execution_from_litmus(t: &LitmusTest) -> Result<Execution, LitmusConvertError> {
    // Event-producing instructions (txbegin/txend brackets are not
    // events).
    let num_events = t
        .threads
        .iter()
        .flatten()
        .filter(|i| !matches!(i.op, Op::TxBegin { .. } | Op::TxEnd))
        .count();
    if num_events > MAX_EVENTS {
        return Err(LitmusConvertError::TooManyEvents(num_events));
    }

    // Pass 1: create events thread by thread in program order.
    let mut events: Vec<Event> = Vec::new();
    // (tid, reg) -> read event.
    let mut reg_event: HashMap<(usize, usize), EventId> = HashMap::new();
    // Per location: value -> write event.
    let mut writes_by_loc: HashMap<Loc, Vec<(u32, EventId)>> = HashMap::new();
    // (tid, instruction index) -> event id, for dependency targets.
    let mut instr_event: HashMap<(usize, usize), EventId> = HashMap::new();
    let mut txns: Vec<TxnClass> = Vec::new();
    let mut deps: Vec<(DepKind, EventId, EventId)> = Vec::new();
    // Exclusive accesses per thread, in program order, for rmw pairing.
    let mut rmw_pairs: Vec<(EventId, EventId)> = Vec::new();

    let attrs_of = |m: &AccessMode| {
        let mut a = Attrs::NONE;
        if m.acquire {
            a = a.union(Attrs::ACQ);
        }
        if m.release {
            a = a.union(Attrs::REL);
        }
        if m.sc {
            a = a.union(Attrs::SC);
        }
        if m.atomic {
            a = a.union(Attrs::ATO);
        }
        a
    };

    for (tid, instrs) in t.threads.iter().enumerate() {
        let mut open_txn: Option<(Vec<EventId>, bool)> = None;
        let mut pending_exclusive: Option<(EventId, Loc)> = None;
        for (idx, instr) in instrs.iter().enumerate() {
            let ev = match &instr.op {
                Op::Load { reg, loc, mode } => {
                    let e = events.len();
                    reg_event.insert((tid, *reg), e);
                    if mode.exclusive {
                        if pending_exclusive.is_some() {
                            return Err(LitmusConvertError::UnpairedExclusive(tid));
                        }
                        pending_exclusive = Some((e, *loc));
                    }
                    Some(Event {
                        kind: txmm_core::EventKind::Read,
                        tid: tid as u8,
                        loc: Some(*loc),
                        attrs: attrs_of(mode),
                    })
                }
                Op::Store { loc, value, mode } => {
                    let e = events.len();
                    if *value == 0 {
                        return Err(LitmusConvertError::ZeroWriteValue(*loc));
                    }
                    let per_loc = writes_by_loc.entry(*loc).or_default();
                    if per_loc.iter().any(|&(v, _)| v == *value) {
                        return Err(LitmusConvertError::AmbiguousWriteValue(*loc, *value));
                    }
                    per_loc.push((*value, e));
                    if mode.exclusive {
                        match pending_exclusive.take() {
                            Some((r, l)) if l == *loc => rmw_pairs.push((r, e)),
                            _ => return Err(LitmusConvertError::UnpairedExclusive(tid)),
                        }
                    }
                    Some(Event {
                        kind: txmm_core::EventKind::Write,
                        tid: tid as u8,
                        loc: Some(*loc),
                        attrs: attrs_of(mode),
                    })
                }
                Op::Fence(f, attrs) => Some(Event {
                    kind: txmm_core::EventKind::Fence(*f),
                    tid: tid as u8,
                    loc: None,
                    attrs: *attrs,
                }),
                Op::LockCall(sym) => {
                    let call = match *sym {
                        "L" => txmm_core::Call::Lock,
                        "U" => txmm_core::Call::Unlock,
                        "Lt" => txmm_core::Call::TLock,
                        _ => txmm_core::Call::TUnlock,
                    };
                    Some(Event::call(tid as u8, call))
                }
                Op::TxBegin { atomic, .. } => {
                    open_txn = Some((Vec::new(), *atomic));
                    None
                }
                Op::TxEnd => {
                    if let Some((evs, atomic)) = open_txn.take() {
                        if !evs.is_empty() {
                            txns.push(TxnClass {
                                events: evs,
                                atomic,
                            });
                        }
                    }
                    None
                }
            };
            if let Some(ev) = ev {
                let e = events.len();
                instr_event.insert((tid, idx), e);
                if let Some((evs, _)) = open_txn.as_mut() {
                    evs.push(e);
                }
                for d in &instr.deps {
                    let src = *instr_event
                        .get(&(tid, d.on))
                        .ok_or(LitmusConvertError::BadDepTarget(tid, d.on))?;
                    deps.push((d.kind, src, e));
                }
                events.push(ev);
            }
        }
        if pending_exclusive.is_some() {
            return Err(LitmusConvertError::UnpairedExclusive(tid));
        }
        // An unterminated transaction still closes at thread end.
        if let Some((evs, atomic)) = open_txn.take() {
            if !evs.is_empty() {
                txns.push(TxnClass {
                    events: evs,
                    atomic,
                });
            }
        }
    }

    let n = events.len();

    // po: same thread, earlier event (events were created thread-major
    // in program order).
    let mut po = Rel::empty(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if events[a].tid == events[b].tid {
                po.add(a, b);
            }
        }
    }

    // co: writes per location ordered by ascending value (the generator
    // assigns 1 + coherence position).
    let mut co = Rel::empty(n);
    for per_loc in writes_by_loc.values_mut() {
        per_loc.sort_unstable_by_key(|&(v, _)| v);
        for i in 0..per_loc.len() {
            for j in (i + 1)..per_loc.len() {
                co.add(per_loc[i].1, per_loc[j].1);
            }
        }
    }

    // rf: register checks name the observed write by value; 0 = initial.
    let mut rf = Rel::empty(n);
    for check in &t.post {
        match check {
            Check::Reg { tid, reg, value } => {
                let &r = reg_event
                    .get(&(*tid, *reg))
                    .ok_or(LitmusConvertError::NoSuchRegister(*tid, *reg))?;
                if *value == 0 {
                    continue; // initial value: no incoming rf edge
                }
                let loc = events[r].loc.expect("read has a location");
                let w = writes_by_loc
                    .get(&loc)
                    .and_then(|ws| ws.iter().find(|&&(v, _)| v == *value))
                    .ok_or(LitmusConvertError::NoWriteWithValue(loc, *value))?
                    .1;
                rf.add(w, r);
            }
            Check::Loc { loc, value } => {
                // Must name the co-maximal write's value, or 0 (the
                // initial value) for a location nothing writes.
                let ok = match writes_by_loc.get(loc).and_then(|ws| ws.last()) {
                    Some(&(v, _)) => v == *value,
                    None => *value == 0,
                };
                if !ok {
                    return Err(LitmusConvertError::InconsistentFinalState(*loc));
                }
            }
            Check::CoSeq { loc, values } => {
                let written = writes_by_loc.get(loc).map(Vec::as_slice).unwrap_or(&[]);
                if !written.iter().map(|&(v, _)| v).eq(values.iter().copied()) {
                    return Err(LitmusConvertError::InconsistentFinalState(*loc));
                }
            }
            Check::TxnOk { .. } => {} // all reconstructed txns committed
        }
    }

    // Dependencies.
    let mut addr = Rel::empty(n);
    let mut ctrl = Rel::empty(n);
    let mut data = Rel::empty(n);
    for (kind, a, b) in deps {
        match kind {
            DepKind::Addr => addr.add(a, b),
            DepKind::Ctrl => ctrl.add(a, b),
            DepKind::Data => data.add(a, b),
        }
    }

    let mut rmw = Rel::empty(n);
    for (r, w) in rmw_pairs {
        rmw.add(r, w);
    }

    let x = Execution::from_parts(events, po, addr, ctrl, data, rmw, rf, co, txns);
    x.check_wf().map_err(LitmusConvertError::IllFormed)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_exec::litmus_from_execution;
    use crate::parse::parse_litmus;
    use txmm_core::ExecBuilder;
    use txmm_models::{catalog, Arch};

    fn roundtrip(x: &Execution, arch: Arch, name: &str) {
        let t = litmus_from_execution(name, x, arch);
        let back = execution_from_litmus(&t).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&back, x, "{name}: litmus round-trip changed the execution");
    }

    #[test]
    fn roundtrip_catalog_shapes() {
        roundtrip(&catalog::fig1(), Arch::X86, "fig1");
        roundtrip(&catalog::fig2(), Arch::X86, "fig2");
        roundtrip(&catalog::sb(None, false, false), Arch::X86, "sb");
        roundtrip(
            &catalog::sb(Some(txmm_core::Fence::MFence), false, false),
            Arch::X86,
            "sb+mfence",
        );
        roundtrip(
            &catalog::mp(Some(txmm_core::Fence::Sync), true, false),
            Arch::Power,
            "mp+sync+dep",
        );
        roundtrip(&catalog::power_exec3(true), Arch::Power, "iriw");
        roundtrip(&catalog::armv8_elision(false), Arch::Armv8, "elision");
        roundtrip(&catalog::rmw_txn(true), Arch::Power, "rmw-split");
    }

    #[test]
    fn roundtrip_through_text() {
        // render -> parse -> execution equals the original execution.
        let x = catalog::fig2();
        let t = litmus_from_execution("fig2", &x, Arch::X86);
        let printed = crate::render::pseudocode(&t);
        let parsed = parse_litmus(&printed).expect("parses");
        assert_eq!(execution_from_litmus(&parsed).expect("converts"), x);
    }

    #[test]
    fn unchecked_read_defaults_to_initial_value() {
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} x <- 1\n\
                   \u{20} r0 <- x\n\
                   Test: x = 1\n";
        let t = parse_litmus(src).expect("parses");
        let x = execution_from_litmus(&t).expect("converts");
        assert!(
            x.rf().is_empty(),
            "unchecked read observes the initial value"
        );
        assert!(!x.fr().is_empty());
    }

    #[test]
    fn unpaired_exclusives_rejected() {
        // Store-exclusive to a different location than the pending
        // load-exclusive.
        let src = "t (ARMv8)\n\
                   thread 0:\n\
                   \u{20} r0 <- x.ex\n\
                   \u{20} y.ex <- 1\n\
                   Test: 0:r0 = 0\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::UnpairedExclusive(0))
        );
        // Load-exclusive never completed.
        let src = "t (ARMv8)\n\
                   thread 0:\n\
                   \u{20} r0 <- x.ex\n\
                   Test: 0:r0 = 0\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::UnpairedExclusive(0))
        );
    }

    #[test]
    fn zero_write_value_rejected() {
        // A store of 0 would collide with the reserved initial value in
        // register checks; the conversion refuses rather than guessing.
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} x <- 0\n\
                   \u{20} r0 <- x\n\
                   Test: 0:r0 = 0\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::ZeroWriteValue(0))
        );
    }

    #[test]
    fn final_state_zero_accepted_for_unwritten_location() {
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} r0 <- x\n\
                   Test: 0:r0 = 0 /\\ x = 0\n";
        let t = parse_litmus(src).expect("parses");
        let x = execution_from_litmus(&t).expect("x = 0 is the initial value");
        assert_eq!(x.len(), 1);
        assert!(x.rf().is_empty());
    }

    #[test]
    fn ambiguous_values_rejected() {
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} x <- 1\n\
                   thread 1:\n\
                   \u{20} x <- 1\n\
                   Test: x = 1\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::AmbiguousWriteValue(0, 1))
        );
    }

    #[test]
    fn missing_write_value_rejected() {
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} r0 <- x\n\
                   Test: 0:r0 = 7\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::NoWriteWithValue(0, 7))
        );
    }

    #[test]
    fn final_state_contradiction_rejected() {
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} x <- 1\n\
                   \u{20} x <- 2\n\
                   Test: x = 1\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::InconsistentFinalState(0))
        );
    }

    #[test]
    fn atomic_txn_blocks_roundtrip() {
        // C++ atomic{} blocks survive render -> parse -> execution:
        // `stxnat` is preserved rather than degrading to relaxed
        // transactions.
        let x = catalog::cpp_mp(true, true);
        assert!(x.txns().iter().all(|t| t.atomic));
        roundtrip(&x, Arch::Cpp, "cpp-mp-atomic");
        let t = litmus_from_execution("cpp-mp-atomic", &x, Arch::Cpp);
        let printed = crate::render::pseudocode(&t);
        let back =
            execution_from_litmus(&parse_litmus(&printed).expect("parses")).expect("converts");
        assert!(back.txns().iter().all(|t| t.atomic));
        assert!(!back.analysis().stxnat().is_empty());
    }

    #[test]
    fn mixed_atomic_and_relaxed_txns_roundtrip() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        b.txn_atomic(&[w]);
        let t1 = b.new_thread();
        let r = b.read(t1, 0);
        b.txn(&[r]);
        let x = b.build().unwrap();
        roundtrip(&x, Arch::Cpp, "mixed-txns");
        let t = litmus_from_execution("mixed-txns", &x, Arch::Cpp);
        let back = execution_from_litmus(&t).unwrap();
        let atomics: Vec<bool> = back.txns().iter().map(|t| t.atomic).collect();
        assert_eq!(atomics, vec![true, false]);
    }

    #[test]
    fn txn_brackets_reconstructed() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 1);
        b.txn(&[w, r]);
        let t1 = b.new_thread();
        let w1 = b.write(t1, 1);
        b.rf(w1, r);
        let x = b.build().unwrap();
        roundtrip(&x, Arch::X86, "txn");
    }

    #[test]
    fn converted_executions_get_model_verdicts() {
        // End to end: the SB litmus test's execution is forbidden under
        // SC and allowed under x86.
        use txmm_models::Model;
        let x = catalog::sb(None, false, false);
        let t = litmus_from_execution("sb", &x, Arch::X86);
        let back = execution_from_litmus(&t).unwrap();
        assert!(!txmm_models::Sc.consistent(&back));
        assert!(txmm_models::X86::base().consistent(&back));
    }
}
