//! Reconstructing the candidate execution a litmus test pins down —
//! the inverse of [`crate::from_exec::litmus_from_execution`].
//!
//! A litmus test in this workspace's format identifies exactly one
//! candidate execution (§2.2/§3.2 of the paper): write values are
//! unique per location, so a passing register check names the write a
//! read observed (`rf`), the sorted value order per location gives the
//! coherence order (`co`), dependency annotations give `addr`/`ctrl`/
//! `data`, exclusive access pairs give `rmw`, and `txbegin`/`txend`
//! brackets give the transaction classes. This module rebuilds that
//! execution, which is what lets a long-lived serving process answer
//! model verdicts for litmus *files* rather than only for in-memory
//! executions.

use std::fmt;

use txmm_core::{Execution, Loc, Rel, TxnClass, WfError, MAX_EVENTS};

use crate::ast::{Check, LitmusTest};

/// Why a litmus test does not determine a well-formed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LitmusConvertError {
    /// The program has more events than [`MAX_EVENTS`].
    TooManyEvents(usize),
    /// Two stores to one location share a value, so register checks
    /// cannot identify which write a read observed.
    AmbiguousWriteValue(Loc, u32),
    /// A store writes 0, the reserved initial value — a register check
    /// of 0 could then mean either the store or the initial value.
    ZeroWriteValue(Loc),
    /// A register check expects a value no store to that location
    /// writes.
    NoWriteWithValue(Loc, u32),
    /// A register check names a thread/register with no matching load.
    NoSuchRegister(usize, usize),
    /// A final-state check disagrees with the coherence order implied
    /// by the write values.
    InconsistentFinalState(Loc),
    /// A dependency annotation points at an instruction that is not an
    /// event (or not present).
    BadDepTarget(usize, usize),
    /// Exclusive accesses on a thread do not pair into rmw edges: a
    /// store-exclusive with no matching same-location load-exclusive,
    /// two load-exclusives in a row, or a load-exclusive never
    /// completed by a store-exclusive.
    UnpairedExclusive(usize),
    /// The reconstructed graph fails well-formedness.
    IllFormed(WfError),
}

impl fmt::Display for LitmusConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LitmusConvertError::TooManyEvents(n) => {
                write!(f, "program has {n} events (max {MAX_EVENTS})")
            }
            LitmusConvertError::AmbiguousWriteValue(l, v) => {
                write!(f, "two stores write {v} to location {l}")
            }
            LitmusConvertError::ZeroWriteValue(l) => {
                write!(
                    f,
                    "a store writes the reserved initial value 0 to location {l}"
                )
            }
            LitmusConvertError::NoWriteWithValue(l, v) => {
                write!(f, "no store writes {v} to location {l}")
            }
            LitmusConvertError::NoSuchRegister(t, r) => {
                write!(f, "check names unknown register {t}:r{r}")
            }
            LitmusConvertError::InconsistentFinalState(l) => {
                write!(
                    f,
                    "final-state check contradicts write values at location {l}"
                )
            }
            LitmusConvertError::BadDepTarget(t, i) => {
                write!(f, "dependency on non-event instruction {i} of thread {t}")
            }
            LitmusConvertError::UnpairedExclusive(t) => {
                write!(
                    f,
                    "exclusive accesses on thread {t} do not pair into rmw edges"
                )
            }
            LitmusConvertError::IllFormed(e) => write!(f, "reconstructed execution: {e}"),
        }
    }
}

impl std::error::Error for LitmusConvertError {}

/// Rebuild the candidate execution a litmus test identifies.
///
/// Reads with no register check observe the initial value (the
/// generator checks every read, so this default only applies to
/// hand-written tests). Transactions are reconstructed as successful
/// classes, preserving the C++ `atomic { ... }` marker so `stxnat`
/// round-trips.
pub fn execution_from_litmus(t: &LitmusTest) -> Result<Execution, LitmusConvertError> {
    // Pass 1 is shared with the exhaustive candidate enumerator
    // (`crate::outcomes`): events, program-given relations, transaction
    // classes and the write-value bookkeeping.
    let sk = crate::outcomes::ProgramSkeleton::from_litmus(t)?;
    let events = sk.events;
    let (po, addr, ctrl, data, rmw) = (sk.po, sk.addr, sk.ctrl, sk.data, sk.rmw);
    let txns: Vec<TxnClass> = sk.txns.into_iter().map(|(_, class)| class).collect();
    let mut writes_by_loc = sk.writes_by_loc;
    let reg_event = sk.reg_event;

    let n = events.len();

    // co: writes per location ordered by ascending value (the generator
    // assigns 1 + coherence position).
    let mut co = Rel::empty(n);
    for per_loc in writes_by_loc.values_mut() {
        per_loc.sort_unstable_by_key(|&(v, _)| v);
        for i in 0..per_loc.len() {
            for j in (i + 1)..per_loc.len() {
                co.add(per_loc[i].1, per_loc[j].1);
            }
        }
    }

    // rf: register checks name the observed write by value; 0 = initial.
    let mut rf = Rel::empty(n);
    for check in &t.post {
        match check {
            Check::Reg { tid, reg, value } => {
                let &r = reg_event
                    .get(&(*tid, *reg))
                    .ok_or(LitmusConvertError::NoSuchRegister(*tid, *reg))?;
                if *value == 0 {
                    continue; // initial value: no incoming rf edge
                }
                let loc = events[r].loc.expect("read has a location");
                let w = writes_by_loc
                    .get(&loc)
                    .and_then(|ws| ws.iter().find(|&&(v, _)| v == *value))
                    .ok_or(LitmusConvertError::NoWriteWithValue(loc, *value))?
                    .1;
                rf.add(w, r);
            }
            Check::Loc { loc, value } => {
                // Must name the co-maximal write's value, or 0 (the
                // initial value) for a location nothing writes.
                let ok = match writes_by_loc.get(loc).and_then(|ws| ws.last()) {
                    Some(&(v, _)) => v == *value,
                    None => *value == 0,
                };
                if !ok {
                    return Err(LitmusConvertError::InconsistentFinalState(*loc));
                }
            }
            Check::CoSeq { loc, values } => {
                let written = writes_by_loc.get(loc).map(Vec::as_slice).unwrap_or(&[]);
                if !written.iter().map(|&(v, _)| v).eq(values.iter().copied()) {
                    return Err(LitmusConvertError::InconsistentFinalState(*loc));
                }
            }
            Check::TxnOk { .. } => {} // all reconstructed txns committed
        }
    }

    let x = Execution::from_parts(events, po, addr, ctrl, data, rmw, rf, co, txns);
    x.check_wf().map_err(LitmusConvertError::IllFormed)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_exec::litmus_from_execution;
    use crate::parse::parse_litmus;
    use txmm_core::ExecBuilder;
    use txmm_models::{catalog, Arch};

    fn roundtrip(x: &Execution, arch: Arch, name: &str) {
        let t = litmus_from_execution(name, x, arch);
        let back = execution_from_litmus(&t).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&back, x, "{name}: litmus round-trip changed the execution");
    }

    #[test]
    fn roundtrip_catalog_shapes() {
        roundtrip(&catalog::fig1(), Arch::X86, "fig1");
        roundtrip(&catalog::fig2(), Arch::X86, "fig2");
        roundtrip(&catalog::sb(None, false, false), Arch::X86, "sb");
        roundtrip(
            &catalog::sb(Some(txmm_core::Fence::MFence), false, false),
            Arch::X86,
            "sb+mfence",
        );
        roundtrip(
            &catalog::mp(Some(txmm_core::Fence::Sync), true, false),
            Arch::Power,
            "mp+sync+dep",
        );
        roundtrip(&catalog::power_exec3(true), Arch::Power, "iriw");
        roundtrip(&catalog::armv8_elision(false), Arch::Armv8, "elision");
        roundtrip(&catalog::rmw_txn(true), Arch::Power, "rmw-split");
    }

    #[test]
    fn roundtrip_through_text() {
        // render -> parse -> execution equals the original execution.
        let x = catalog::fig2();
        let t = litmus_from_execution("fig2", &x, Arch::X86);
        let printed = crate::render::pseudocode(&t);
        let parsed = parse_litmus(&printed).expect("parses");
        assert_eq!(execution_from_litmus(&parsed).expect("converts"), x);
    }

    #[test]
    fn unchecked_read_defaults_to_initial_value() {
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} x <- 1\n\
                   \u{20} r0 <- x\n\
                   Test: x = 1\n";
        let t = parse_litmus(src).expect("parses");
        let x = execution_from_litmus(&t).expect("converts");
        assert!(
            x.rf().is_empty(),
            "unchecked read observes the initial value"
        );
        assert!(!x.fr().is_empty());
    }

    #[test]
    fn unpaired_exclusives_rejected() {
        // Store-exclusive to a different location than the pending
        // load-exclusive.
        let src = "t (ARMv8)\n\
                   thread 0:\n\
                   \u{20} r0 <- x.ex\n\
                   \u{20} y.ex <- 1\n\
                   Test: 0:r0 = 0\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::UnpairedExclusive(0))
        );
        // Load-exclusive never completed.
        let src = "t (ARMv8)\n\
                   thread 0:\n\
                   \u{20} r0 <- x.ex\n\
                   Test: 0:r0 = 0\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::UnpairedExclusive(0))
        );
    }

    #[test]
    fn zero_write_value_rejected() {
        // A store of 0 would collide with the reserved initial value in
        // register checks; the conversion refuses rather than guessing.
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} x <- 0\n\
                   \u{20} r0 <- x\n\
                   Test: 0:r0 = 0\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::ZeroWriteValue(0))
        );
    }

    #[test]
    fn final_state_zero_accepted_for_unwritten_location() {
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} r0 <- x\n\
                   Test: 0:r0 = 0 /\\ x = 0\n";
        let t = parse_litmus(src).expect("parses");
        let x = execution_from_litmus(&t).expect("x = 0 is the initial value");
        assert_eq!(x.len(), 1);
        assert!(x.rf().is_empty());
    }

    #[test]
    fn ambiguous_values_rejected() {
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} x <- 1\n\
                   thread 1:\n\
                   \u{20} x <- 1\n\
                   Test: x = 1\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::AmbiguousWriteValue(0, 1))
        );
    }

    #[test]
    fn missing_write_value_rejected() {
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} r0 <- x\n\
                   Test: 0:r0 = 7\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::NoWriteWithValue(0, 7))
        );
    }

    #[test]
    fn final_state_contradiction_rejected() {
        let src = "t (x86)\n\
                   thread 0:\n\
                   \u{20} x <- 1\n\
                   \u{20} x <- 2\n\
                   Test: x = 1\n";
        let t = parse_litmus(src).expect("parses");
        assert_eq!(
            execution_from_litmus(&t),
            Err(LitmusConvertError::InconsistentFinalState(0))
        );
    }

    #[test]
    fn atomic_txn_blocks_roundtrip() {
        // C++ atomic{} blocks survive render -> parse -> execution:
        // `stxnat` is preserved rather than degrading to relaxed
        // transactions.
        let x = catalog::cpp_mp(true, true);
        assert!(x.txns().iter().all(|t| t.atomic));
        roundtrip(&x, Arch::Cpp, "cpp-mp-atomic");
        let t = litmus_from_execution("cpp-mp-atomic", &x, Arch::Cpp);
        let printed = crate::render::pseudocode(&t);
        let back =
            execution_from_litmus(&parse_litmus(&printed).expect("parses")).expect("converts");
        assert!(back.txns().iter().all(|t| t.atomic));
        assert!(!back.analysis().stxnat().is_empty());
    }

    #[test]
    fn mixed_atomic_and_relaxed_txns_roundtrip() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        b.txn_atomic(&[w]);
        let t1 = b.new_thread();
        let r = b.read(t1, 0);
        b.txn(&[r]);
        let x = b.build().unwrap();
        roundtrip(&x, Arch::Cpp, "mixed-txns");
        let t = litmus_from_execution("mixed-txns", &x, Arch::Cpp);
        let back = execution_from_litmus(&t).unwrap();
        let atomics: Vec<bool> = back.txns().iter().map(|t| t.atomic).collect();
        assert_eq!(atomics, vec![true, false]);
    }

    #[test]
    fn txn_brackets_reconstructed() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 1);
        b.txn(&[w, r]);
        let t1 = b.new_thread();
        let w1 = b.write(t1, 1);
        b.rf(w1, r);
        let x = b.build().unwrap();
        roundtrip(&x, Arch::X86, "txn");
    }

    #[test]
    fn converted_executions_get_model_verdicts() {
        // End to end: the SB litmus test's execution is forbidden under
        // SC and allowed under x86.
        use txmm_models::Model;
        let x = catalog::sb(None, false, false);
        let t = litmus_from_execution("sb", &x, Arch::X86);
        let back = execution_from_litmus(&t).unwrap();
        assert!(!txmm_models::Sc.consistent(&back));
        assert!(txmm_models::X86::base().consistent(&back));
    }
}
