//! # txmm-verify
//!
//! The paper's metatheory (§8, Table 2), checked by bounded exhaustive
//! search:
//!
//! * [`monotonic`] — introducing/enlarging/coalescing transactions never
//!   allows new behaviour (§8.1; counterexamples for Power and ARMv8 at
//!   two events, via `TxnCancelsRMW`);
//! * [`compile`] — the C++-to-hardware mappings and their soundness
//!   (§8.2);
//! * [`elision`] — lock elision as a program transformation (§8.3,
//!   Table 3), rediscovering Example 1.1 on ARMv8;
//! * [`theorems`] — bounded validation of Theorems 7.2 and 7.3.
//!
//! ```
//! use txmm_verify::elision::{check_lock_elision, ElisionTarget};
//!
//! let r = check_lock_elision(ElisionTarget::Armv8, None);
//! assert!(r.counterexample.is_some(), "lock elision is unsound on ARMv8");
//! ```

pub mod compile;
pub mod elision;
pub mod monotonic;
pub mod theorems;

pub use compile::{check_compilation, check_compilation_seq, map_execution, CompileResult};
pub use elision::{check_lock_elision, expand, violates_cr_order, ElisionResult, ElisionTarget};
pub use monotonic::{
    check_monotonicity, check_monotonicity_seq, txn_extensions, MonotonicityResult,
};
pub use theorems::{
    check_theorem_7_2, check_theorem_7_2_seq, check_theorem_7_3, check_theorem_7_3_seq,
    check_tm_conservative, TheoremResult,
};
