//! Bounded verification of the paper's theorems (§7).
//!
//! The paper proves these in Isabelle; we validate them exhaustively up
//! to a bound (the same regime Memalloy uses for Table 2) and leave
//! random deeper exploration to the proptest suites.
//!
//! Every sweep consumes the streaming enumerator on the work-stealing
//! pool (candidates checked on whichever worker enumerates them); a
//! counterexample on any worker stops the others. Sequential references
//! are kept for differential testing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use txmm_core::{Execution, ExecutionAnalysis};
use txmm_models::{Arch, Cpp, Model, Tsc};
use txmm_synth::enumerate::{visit_par, CandSeq};
use txmm_synth::par::worker_count;
use txmm_synth::{enumerate, EnumConfig};

/// The outcome of a bounded theorem check.
pub struct TheoremResult {
    /// An execution violating the theorem, if any.
    pub counterexample: Option<Execution>,
    /// Executions satisfying the hypotheses that were checked.
    pub checked: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

fn cpp_cfg(events: usize) -> EnumConfig {
    EnumConfig {
        arch: Arch::Cpp,
        events,
        max_threads: 2,
        max_locs: 2,
        fences: false,
        deps: false,
        rmws: false,
        txns: true,
        attrs: true,
        atomic_txns: true,
    }
}

/// Run one theorem's per-candidate predicate over the work-stealing
/// candidate stream.
///
/// `test` returns `None` when the hypotheses fail, `Some(false)` for a
/// checked candidate that satisfies the conclusion, and `Some(true)`
/// for a counterexample. When several workers find counterexamples, the
/// earliest in enumeration order is reported.
fn sharded_sweep(
    cfg: &EnumConfig,
    budget: Option<Duration>,
    test: impl Fn(&Execution, &ExecutionAnalysis<'_>) -> Option<bool> + Sync,
) -> TheoremResult {
    type Found = (CandSeq, Execution);
    let start = Instant::now();
    let stop = AtomicBool::new(false);
    let (states, _) = visit_par(
        cfg,
        worker_count(),
        |_| (0usize, None::<Found>),
        |seq, x, (checked, counterexample)| {
            if counterexample.is_some() || stop.load(Ordering::Relaxed) {
                return;
            }
            if let Some(b) = budget {
                if start.elapsed() > b {
                    stop.store(true, Ordering::Relaxed);
                    return;
                }
            }
            let a = x.analysis();
            match test(x, &a) {
                None => {}
                Some(false) => *checked += 1,
                Some(true) => {
                    *checked += 1;
                    *counterexample = Some((seq, x.clone()));
                    stop.store(true, Ordering::Relaxed);
                }
            }
        },
    );
    let mut checked = 0usize;
    let mut best: Option<Found> = None;
    for (c, cex) in states {
        checked += c;
        if let Some((seq, x)) = cex {
            if best.as_ref().is_none_or(|(s, _)| seq < *s) {
                best = Some((seq, x));
            }
        }
    }
    TheoremResult {
        counterexample: best.map(|(_, x)| x),
        checked,
        elapsed: start.elapsed(),
    }
}

/// The sequential counterpart of [`sharded_sweep`].
fn sequential_sweep(
    cfg: &EnumConfig,
    budget: Option<Duration>,
    mut test: impl FnMut(&Execution, &ExecutionAnalysis<'_>) -> Option<bool>,
) -> TheoremResult {
    let start = Instant::now();
    let mut checked = 0usize;
    let mut counterexample = None;
    enumerate(cfg, &mut |x| {
        if counterexample.is_some() {
            return;
        }
        if let Some(b) = budget {
            if start.elapsed() > b {
                return;
            }
        }
        let a = x.analysis();
        match test(x, &a) {
            None => {}
            Some(false) => checked += 1,
            Some(true) => {
                checked += 1;
                counterexample = Some(x.clone());
            }
        }
    });
    TheoremResult {
        counterexample,
        checked,
        elapsed: start.elapsed(),
    }
}

/// Theorem 7.2's per-candidate predicate.
fn theorem_7_2_test(m: &Cpp, x: &Execution, a: &ExecutionAnalysis<'_>) -> Option<bool> {
    if !m.consistent_analysis(a) || m.racy_analysis(a) || !Cpp::atomic_txns_wellformed(x) {
        return None;
    }
    if a.stxnat().is_empty() {
        return None;
    }
    Some(!a.strong_isol_atomic().is_acyclic())
}

/// Theorem 7.2: in race-free C++ executions whose atomic transactions
/// contain no atomic operations, atomic transactions are strongly
/// isolated: `acyclic(stronglift(com, stxnat))`.
pub fn check_theorem_7_2(events: usize, budget: Option<Duration>) -> TheoremResult {
    let m = Cpp::tm();
    sharded_sweep(&cpp_cfg(events), budget, |x, a| theorem_7_2_test(&m, x, a))
}

/// The sequential reference implementation of [`check_theorem_7_2`].
pub fn check_theorem_7_2_seq(events: usize, budget: Option<Duration>) -> TheoremResult {
    let m = Cpp::tm();
    sequential_sweep(&cpp_cfg(events), budget, |x, a| theorem_7_2_test(&m, x, a))
}

/// Theorem 7.3's per-candidate predicate.
fn theorem_7_3_test(m: &Cpp, x: &Execution, a: &ExecutionAnalysis<'_>) -> Option<bool> {
    // Hypotheses: stxn = stxnat, Ato = SC, NoRace, consistency, plus
    // the specification's vocabulary condition on atomic transactions.
    if x.txns().iter().any(|t| !t.atomic) {
        return None;
    }
    if a.ato() != a.sc_events() {
        return None;
    }
    if !Cpp::atomic_txns_wellformed(x) {
        return None;
    }
    if !m.consistent_analysis(a) || m.racy_analysis(a) {
        return None;
    }
    Some(!Tsc.consistent_analysis(a))
}

/// Theorem 7.3 (transactional SC-DRF): a consistent C++ execution with
/// no relaxed transactions, no non-SC atomics and no races is consistent
/// under TSC.
pub fn check_theorem_7_3(events: usize, budget: Option<Duration>) -> TheoremResult {
    let m = Cpp::tm();
    sharded_sweep(&cpp_cfg(events), budget, |x, a| theorem_7_3_test(&m, x, a))
}

/// The sequential reference implementation of [`check_theorem_7_3`].
pub fn check_theorem_7_3_seq(events: usize, budget: Option<Duration>) -> TheoremResult {
    let m = Cpp::tm();
    sequential_sweep(&cpp_cfg(events), budget, |x, a| theorem_7_3_test(&m, x, a))
}

/// The baseline sanity statement of §8: TM models agree with their
/// baselines on transaction-free executions.
pub fn check_tm_conservative(cfg: &EnumConfig, tm: &dyn Model, base: &dyn Model) -> TheoremResult {
    let mut cfg = cfg.clone();
    cfg.txns = false;
    sharded_sweep(&cfg, None, |_, a| {
        Some(tm.consistent_analysis(a) != base.consistent_analysis(a))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_models::{Armv8, Power, X86};

    #[test]
    fn theorem_7_2_holds_to_three_events() {
        let r = check_theorem_7_2(3, None);
        assert!(r.counterexample.is_none(), "Theorem 7.2 must hold");
        assert!(r.checked > 0, "hypotheses must be satisfiable");
    }

    #[test]
    fn theorem_7_3_holds_to_three_events() {
        let r = check_theorem_7_3(3, None);
        assert!(r.counterexample.is_none(), "Theorem 7.3 must hold");
        assert!(r.checked > 0);
    }

    #[test]
    fn parallel_matches_sequential_reference() {
        let par = check_theorem_7_2(3, None);
        let seq = check_theorem_7_2_seq(3, None);
        assert_eq!(par.checked, seq.checked);
        assert_eq!(par.counterexample, seq.counterexample);
        let par = check_theorem_7_3(3, None);
        let seq = check_theorem_7_3_seq(3, None);
        assert_eq!(par.checked, seq.checked);
        assert_eq!(par.counterexample, seq.counterexample);
    }

    #[test]
    fn tm_models_conservative_over_baselines() {
        for (tm, base, arch) in [
            (
                Box::new(X86::tm()) as Box<dyn Model>,
                Box::new(X86::base()) as Box<dyn Model>,
                Arch::X86,
            ),
            (Box::new(Power::tm()), Box::new(Power::base()), Arch::Power),
            (Box::new(Armv8::tm()), Box::new(Armv8::base()), Arch::Armv8),
        ] {
            let cfg = EnumConfig {
                arch,
                events: 3,
                max_threads: 2,
                max_locs: 2,
                fences: true,
                deps: arch != Arch::X86,
                rmws: true,
                txns: false,
                attrs: arch == Arch::Armv8,
                atomic_txns: false,
            };
            let r = check_tm_conservative(&cfg, tm.as_ref(), base.as_ref());
            assert!(
                r.counterexample.is_none(),
                "{} must equal its baseline without transactions",
                tm.name()
            );
        }
    }
}
