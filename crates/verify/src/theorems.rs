//! Bounded verification of the paper's theorems (§7).
//!
//! The paper proves these in Isabelle; we validate them exhaustively up
//! to a bound (the same regime Memalloy uses for Table 2) and leave
//! random deeper exploration to the proptest suites.

use std::time::{Duration, Instant};

use txmm_core::Execution;
use txmm_models::{Arch, Cpp, Model, Tsc};
use txmm_synth::{enumerate, EnumConfig};

/// The outcome of a bounded theorem check.
pub struct TheoremResult {
    /// An execution violating the theorem, if any.
    pub counterexample: Option<Execution>,
    /// Executions satisfying the hypotheses that were checked.
    pub checked: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

fn cpp_cfg(events: usize) -> EnumConfig {
    EnumConfig {
        arch: Arch::Cpp,
        events,
        max_threads: 2,
        max_locs: 2,
        fences: false,
        deps: false,
        rmws: false,
        txns: true,
        attrs: true,
        atomic_txns: true,
    }
}

/// Theorem 7.2: in race-free C++ executions whose atomic transactions
/// contain no atomic operations, atomic transactions are strongly
/// isolated: `acyclic(stronglift(com, stxnat))`.
pub fn check_theorem_7_2(events: usize, budget: Option<Duration>) -> TheoremResult {
    let m = Cpp::tm();
    let start = Instant::now();
    let mut checked = 0usize;
    let mut counterexample = None;
    enumerate(&cpp_cfg(events), &mut |x| {
        if counterexample.is_some() {
            return;
        }
        if let Some(b) = budget {
            if start.elapsed() > b {
                return;
            }
        }
        // Hypotheses, all over one shared analysis.
        let a = x.analysis();
        if !m.consistent_analysis(&a) || m.racy_analysis(&a) || !Cpp::atomic_txns_wellformed(x) {
            return;
        }
        if a.stxnat().is_empty() {
            return;
        }
        checked += 1;
        if !a.strong_isol_atomic().is_acyclic() {
            counterexample = Some(x.clone());
        }
    });
    TheoremResult {
        counterexample,
        checked,
        elapsed: start.elapsed(),
    }
}

/// Theorem 7.3 (transactional SC-DRF): a consistent C++ execution with
/// no relaxed transactions, no non-SC atomics and no races is consistent
/// under TSC.
pub fn check_theorem_7_3(events: usize, budget: Option<Duration>) -> TheoremResult {
    let m = Cpp::tm();
    let start = Instant::now();
    let mut checked = 0usize;
    let mut counterexample = None;
    enumerate(&cpp_cfg(events), &mut |x| {
        if counterexample.is_some() {
            return;
        }
        if let Some(b) = budget {
            if start.elapsed() > b {
                return;
            }
        }
        // Hypotheses: stxn = stxnat, Ato = SC, NoRace, consistency,
        // plus the specification's vocabulary condition on atomic
        // transactions.
        if x.txns().iter().any(|t| !t.atomic) {
            return;
        }
        let a = x.analysis();
        if a.ato() != a.sc_events() {
            return;
        }
        if !Cpp::atomic_txns_wellformed(x) {
            return;
        }
        if !m.consistent_analysis(&a) || m.racy_analysis(&a) {
            return;
        }
        checked += 1;
        if !Tsc.consistent_analysis(&a) {
            counterexample = Some(x.clone());
        }
    });
    TheoremResult {
        counterexample,
        checked,
        elapsed: start.elapsed(),
    }
}

/// The baseline sanity statement of §8: TM models agree with their
/// baselines on transaction-free executions.
pub fn check_tm_conservative(cfg: &EnumConfig, tm: &dyn Model, base: &dyn Model) -> TheoremResult {
    let start = Instant::now();
    let mut checked = 0usize;
    let mut counterexample = None;
    let mut cfg = cfg.clone();
    cfg.txns = false;
    enumerate(&cfg, &mut |x| {
        if counterexample.is_some() {
            return;
        }
        checked += 1;
        let a = x.analysis();
        if tm.consistent_analysis(&a) != base.consistent_analysis(&a) {
            counterexample = Some(x.clone());
        }
    });
    TheoremResult {
        counterexample,
        checked,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_models::{Armv8, Power, X86};

    #[test]
    fn theorem_7_2_holds_to_three_events() {
        let r = check_theorem_7_2(3, None);
        assert!(r.counterexample.is_none(), "Theorem 7.2 must hold");
        assert!(r.checked > 0, "hypotheses must be satisfiable");
    }

    #[test]
    fn theorem_7_3_holds_to_three_events() {
        let r = check_theorem_7_3(3, None);
        assert!(r.counterexample.is_none(), "Theorem 7.3 must hold");
        assert!(r.checked > 0);
    }

    #[test]
    fn tm_models_conservative_over_baselines() {
        for (tm, base, arch) in [
            (
                Box::new(X86::tm()) as Box<dyn Model>,
                Box::new(X86::base()) as Box<dyn Model>,
                Arch::X86,
            ),
            (Box::new(Power::tm()), Box::new(Power::base()), Arch::Power),
            (Box::new(Armv8::tm()), Box::new(Armv8::base()), Arch::Armv8),
        ] {
            let cfg = EnumConfig {
                arch,
                events: 3,
                max_threads: 2,
                max_locs: 2,
                fences: true,
                deps: arch != Arch::X86,
                rmws: true,
                txns: false,
                attrs: arch == Arch::Armv8,
                atomic_txns: false,
            };
            let r = check_tm_conservative(&cfg, tm.as_ref(), base.as_ref());
            assert!(
                r.counterexample.is_none(),
                "{} must equal its baseline without transactions",
                tm.name()
            );
        }
    }
}
