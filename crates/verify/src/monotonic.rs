//! Monotonicity checking (§8.1): introducing, enlarging or coalescing
//! transactions must never make an inconsistent execution consistent.
//!
//! The bounded check consumes the streaming enumerator on the
//! work-stealing pool (candidates checked on whichever worker
//! enumerates them, so one big thread shape spreads across every
//! core); a counterexample found anywhere stops the other workers
//! early. The sequential version is kept as the differential reference.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use txmm_core::{Execution, TxnClass};
use txmm_models::Model;
use txmm_synth::enumerate::{visit_par, CandSeq};
use txmm_synth::par::worker_count;
use txmm_synth::{enumerate, EnumConfig};

/// The outcome of a bounded monotonicity check.
pub struct MonotonicityResult {
    /// A violating pair `(X, Y)`: `X` inconsistent, `Y = X` with more
    /// `stxn` edges, `Y` consistent.
    pub counterexample: Option<(Execution, Execution)>,
    /// Executions examined.
    pub checked: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Whether the whole space (at this bound) was covered.
    pub complete: bool,
}

/// One-step transaction *extensions* of `x`: the inverse of weakening
/// clause (v), plus coalescing of adjacent transactions.
pub fn txn_extensions(x: &Execution) -> Vec<Execution> {
    let mut out = Vec::new();
    let n = x.len();
    // Introduce: a new singleton transaction on an unclaimed event.
    for e in 0..n {
        if x.txn_of(e).is_none() {
            let mut y = x.clone();
            y.txns_mut().push(TxnClass {
                events: vec![e],
                atomic: false,
            });
            if y.check_wf().is_ok() {
                out.push(y);
            }
        }
    }
    // Enlarge: absorb the po-neighbour before the first or after the
    // last member; coalesce when the neighbour belongs to another txn.
    for ti in 0..x.txns().len() {
        let class = &x.txns()[ti];
        let tid = x.event(class.events[0]).tid;
        let thread = x.thread_events(tid);
        let first_pos = thread.index_of(class.events[0]).expect("member");
        let last = *class.events.last().expect("non-empty");
        let last_pos = thread.index_of(last).expect("member");
        let mut grow = |neighbour: usize, at_front: bool| {
            let mut y = x.clone();
            match x.txn_of(neighbour) {
                None => {
                    let c = &mut y.txns_mut()[ti];
                    if at_front {
                        c.events.insert(0, neighbour);
                    } else {
                        c.events.push(neighbour);
                    }
                }
                Some(tj) if tj != ti => {
                    // Coalesce classes ti and tj.
                    let other = y.txns_mut()[tj].events.clone();
                    let c = &mut y.txns_mut()[ti];
                    if at_front {
                        let mut evs = other;
                        evs.extend(c.events.iter().copied());
                        c.events = evs;
                    } else {
                        c.events.extend(other);
                    }
                    y.txns_mut().remove(tj);
                }
                _ => return,
            }
            if y.check_wf().is_ok() {
                out.push(y);
            }
        };
        if first_pos > 0 {
            grow(thread.get(first_pos - 1), true);
        }
        if last_pos + 1 < thread.len() {
            grow(thread.get(last_pos + 1), false);
        }
    }
    out
}

/// One candidate's worth of monotonicity checking; returns a violating
/// pair when the model is non-monotone at `x`.
fn violation_at(model: &dyn Model, x: &Execution) -> Option<(Execution, Execution)> {
    if model.consistent(x) {
        return None;
    }
    for y in txn_extensions(x) {
        if model.consistent(&y) {
            return Some((x.clone(), y));
        }
    }
    None
}

/// Bounded monotonicity check for one model at one event count, run on
/// the work-stealing candidate stream across every core.
///
/// A counterexample on any worker stops the others at their next
/// candidate, so `checked` can undercount relative to
/// [`check_monotonicity_seq`] once a violation exists; on violation-free
/// (and unbudgeted) runs the two agree exactly. When several workers
/// find violations, the earliest in enumeration order is reported.
pub fn check_monotonicity(
    cfg: &EnumConfig,
    model: &dyn Model,
    budget: Option<Duration>,
) -> MonotonicityResult {
    type Found = (CandSeq, (Execution, Execution));
    let start = Instant::now();
    let stop = AtomicBool::new(false);
    let overrun = AtomicBool::new(false);
    let (states, _) = visit_par(
        cfg,
        worker_count(),
        |_| (0usize, None::<Found>),
        |seq, x, (checked, counterexample)| {
            if counterexample.is_some() || stop.load(Ordering::Relaxed) {
                return;
            }
            if let Some(b) = budget {
                if start.elapsed() > b {
                    overrun.store(true, Ordering::Relaxed);
                    stop.store(true, Ordering::Relaxed);
                    return;
                }
            }
            *checked += 1;
            if let Some(pair) = violation_at(model, x) {
                *counterexample = Some((seq, pair));
                stop.store(true, Ordering::Relaxed);
            }
        },
    );
    let mut checked = 0usize;
    let mut best: Option<Found> = None;
    for (c, cex) in states {
        checked += c;
        if let Some((seq, pair)) = cex {
            if best.as_ref().is_none_or(|(s, _)| seq < *s) {
                best = Some((seq, pair));
            }
        }
    }
    MonotonicityResult {
        counterexample: best.map(|(_, pair)| pair),
        checked,
        elapsed: start.elapsed(),
        complete: !overrun.load(Ordering::Relaxed),
    }
}

/// The sequential reference implementation of [`check_monotonicity`].
pub fn check_monotonicity_seq(
    cfg: &EnumConfig,
    model: &dyn Model,
    budget: Option<Duration>,
) -> MonotonicityResult {
    let start = Instant::now();
    let mut checked = 0usize;
    let mut counterexample = None;
    let mut complete = true;
    enumerate(cfg, &mut |x| {
        if counterexample.is_some() {
            return;
        }
        if let Some(b) = budget {
            if start.elapsed() > b {
                complete = false;
                return;
            }
        }
        checked += 1;
        counterexample = violation_at(model, x);
    });
    MonotonicityResult {
        counterexample,
        checked,
        elapsed: start.elapsed(),
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::ExecBuilder;
    use txmm_models::{Arch, Armv8, Power, X86};

    #[test]
    fn extensions_cover_intro_enlarge_coalesce() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.read(t0, 0);
        let c = b.read(t0, 0);
        let d = b.read(t0, 0);
        b.txn(&[a]);
        b.txn(&[c]);
        let _ = d;
        let x = b.build().unwrap();
        let exts = txn_extensions(&x);
        // Introduce on d; enlarge txn{a} to the right = coalesce with
        // txn{c}; enlarge txn{c} left = coalesce; enlarge txn{c} right
        // onto d.
        assert!(exts.iter().any(|y| y.txns().len() == 3));
        assert!(exts
            .iter()
            .any(|y| y.txns().len() == 1 && y.txns()[0].events.len() == 2));
        assert!(exts
            .iter()
            .any(|y| y.txns().iter().any(|t| t.events == vec![c, d])));
    }

    #[test]
    fn power_counterexample_at_two_events() {
        // §8.1: the split-rmw execution is inconsistent
        // (TxnCancelsRMW) but coalescing makes it consistent.
        let cfg = EnumConfig {
            arch: Arch::Power,
            events: 2,
            max_threads: 1,
            max_locs: 1,
            fences: false,
            deps: false,
            rmws: true,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let r = check_monotonicity(&cfg, &Power::tm(), None);
        let (x, y) = r.counterexample.expect("paper finds a c'ex at |E| = 2");
        // The violation is TxnCancelsRMW: an rmw straddling a
        // transaction boundary, cured by growing/merging the txn.
        assert!(!x.rmw().is_empty());
        assert!(!Power::tm().consistent(&x));
        assert!(Power::tm().consistent(&y));
        assert!(
            y.txns().iter().any(|t| t.events.len() == 2),
            "rmw reunited in one txn"
        );
    }

    #[test]
    fn armv8_counterexample_at_two_events() {
        let cfg = EnumConfig {
            arch: Arch::Armv8,
            events: 2,
            max_threads: 1,
            max_locs: 1,
            fences: false,
            deps: false,
            rmws: true,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let r = check_monotonicity(&cfg, &Armv8::tm(), None);
        assert!(r.counterexample.is_some());
    }

    #[test]
    fn parallel_matches_sequential_reference() {
        // Violation-free sweep: the sharded and sequential checkers
        // examine the same space and agree exactly.
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: true,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let par = check_monotonicity(&cfg, &X86::tm(), None);
        let seq = check_monotonicity_seq(&cfg, &X86::tm(), None);
        assert_eq!(par.checked, seq.checked);
        assert_eq!(par.complete, seq.complete);
        assert!(par.counterexample.is_none() && seq.counterexample.is_none());
        // Violating sweep: both find a counterexample.
        let cfg = EnumConfig {
            arch: Arch::Power,
            events: 2,
            max_threads: 1,
            max_locs: 1,
            fences: false,
            deps: false,
            rmws: true,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        assert!(check_monotonicity(&cfg, &Power::tm(), None)
            .counterexample
            .is_some());
        assert!(check_monotonicity_seq(&cfg, &Power::tm(), None)
            .counterexample
            .is_some());
    }

    #[test]
    fn x86_monotone_at_small_bounds() {
        // Table 2: no counterexample for x86 (paper checks 6 events; we
        // check 3 here, the bench pushes further).
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: true,
            deps: false,
            rmws: true,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let r = check_monotonicity(&cfg, &X86::tm(), None);
        assert!(r.counterexample.is_none(), "x86 TM is monotone");
        assert!(r.complete);
        assert!(r.checked > 0);
    }
}
