//! Lock-elision checking (§8.3): validating a lock-elision library
//! against a hardware TM model by treating the library as a program
//! transformation.
//!
//! *Abstract* executions contain `L`/`U` (ordinary lock/unlock) and
//! `Lt`/`Ut` (elided) call events; the specification is the architecture
//! model plus `CROrder = acyclic(weaklift(po ∪ com, scr))`. The π
//! mapping of Table 3 expands each call into the architecture's
//! recommended spinlock sequence (and each elided region into a
//! transaction whose first action reads the lock, `TxnReadsLockFree`).
//! A counterexample is an abstract execution violating only `CROrder`
//! whose expansion is consistent on the target — mutual exclusion broken.

use std::time::{Duration, Instant};

use txmm_core::{
    weaklift, Attrs, Call, Event, EventKind, ExecBuilder, Execution, Fence, Rel, TxnClass,
};
use txmm_models::{Armv8, Model, Power, X86};

/// The four columns of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElisionTarget {
    /// x86: test-and-test-and-set lock, plain unlock.
    X86,
    /// Power: larx/stcx + ctrl(+isync) from the store-exclusive
    /// (footnote 3), sync-fenced unlock.
    Power,
    /// ARMv8: LDAXR/STXR acquire lock, STLR unlock — the broken column.
    Armv8,
    /// ARMv8 with the §1.1 repair: a DMB appended to `lock()`.
    Armv8Fixed,
}

impl ElisionTarget {
    /// The architecture model used for the concrete side.
    pub fn model(self) -> Box<dyn Model> {
        match self {
            ElisionTarget::X86 => Box::new(X86::tm()),
            ElisionTarget::Power => Box::new(Power::tm()),
            ElisionTarget::Armv8 | ElisionTarget::Armv8Fixed => Box::new(Armv8::tm()),
        }
    }

    /// A display name.
    pub fn name(self) -> &'static str {
        match self {
            ElisionTarget::X86 => "x86",
            ElisionTarget::Power => "Power",
            ElisionTarget::Armv8 => "ARMv8",
            ElisionTarget::Armv8Fixed => "ARMv8 (fixed)",
        }
    }
}

/// Does the abstract execution violate `CROrder` (while its underlying
/// data accesses stay architecture-consistent)?
pub fn violates_cr_order(x: &Execution) -> bool {
    violates_cr_order_analysis(&x.analysis())
}

/// [`violates_cr_order`] over a caller-shared analysis.
pub fn violates_cr_order_analysis(a: &txmm_core::ExecutionAnalysis<'_>) -> bool {
    !weaklift(&a.po().union(a.com()), a.scr()).is_acyclic()
}

/// One access inside a critical region of an abstract execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BodyAccess {
    write: bool,
    loc: u8,
}

/// Enumerate abstract executions: thread 0 runs an ordinary `L…U`
/// critical region, thread 1 an elided `Lt…Ut` one; each body has one or
/// two accesses over at most two data locations, with all rf/co choices.
fn abstract_candidates(visit: &mut dyn FnMut(&Execution)) {
    let bodies: Vec<Vec<BodyAccess>> = {
        let mut out = Vec::new();
        let accs = [
            BodyAccess {
                write: false,
                loc: 0,
            },
            BodyAccess {
                write: true,
                loc: 0,
            },
        ];
        for &a in &accs {
            out.push(vec![a]);
        }
        let seconds = [
            BodyAccess {
                write: false,
                loc: 0,
            },
            BodyAccess {
                write: true,
                loc: 0,
            },
            BodyAccess {
                write: false,
                loc: 1,
            },
            BodyAccess {
                write: true,
                loc: 1,
            },
        ];
        for &a in &accs {
            for &b in &seconds {
                out.push(vec![a, b]);
            }
        }
        out
    };
    for body0 in &bodies {
        for body1 in &bodies {
            // Dependency choice: an R→W pair inside a body may carry a
            // data dependency (matching `x += 2` in Example 1.1).
            for dep0 in [false, true] {
                for dep1 in [false, true] {
                    if dep0 && !(body0.len() == 2 && !body0[0].write && body0[1].write) {
                        continue;
                    }
                    if dep1 && !(body1.len() == 2 && !body1[0].write && body1[1].write) {
                        continue;
                    }
                    build_abstract(body0, body1, dep0, dep1, visit);
                }
            }
        }
    }
}

fn build_abstract(
    body0: &[BodyAccess],
    body1: &[BodyAccess],
    dep0: bool,
    dep1: bool,
    visit: &mut dyn FnMut(&Execution),
) {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    b.call(t0, Call::Lock);
    let evs0: Vec<usize> = body0
        .iter()
        .map(|a| {
            if a.write {
                b.write(t0, a.loc)
            } else {
                b.read(t0, a.loc)
            }
        })
        .collect();
    b.call(t0, Call::Unlock);
    let t1 = b.new_thread();
    b.call(t1, Call::TLock);
    let evs1: Vec<usize> = body1
        .iter()
        .map(|a| {
            if a.write {
                b.write(t1, a.loc)
            } else {
                b.read(t1, a.loc)
            }
        })
        .collect();
    b.call(t1, Call::TUnlock);
    if dep0 {
        b.data(evs0[0], evs0[1]);
    }
    if dep1 {
        b.data(evs1[0], evs1[1]);
    }
    let base = b.build_unchecked();

    // Enumerate rf per read and co per location over the data accesses.
    let reads: Vec<usize> = (0..base.len())
        .filter(|&e| base.event(e).is_read())
        .collect();
    let writes: Vec<usize> = (0..base.len())
        .filter(|&e| base.event(e).is_write())
        .collect();
    let rf_opts: Vec<Vec<Option<usize>>> = reads
        .iter()
        .map(|&r| {
            let mut o = vec![None];
            for &w in &writes {
                if base.event(w).loc == base.event(r).loc {
                    o.push(Some(w));
                }
            }
            o
        })
        .collect();
    let mut rf_choice = vec![0usize; reads.len()];
    loop {
        // co permutations per loc.
        let locs: Vec<u8> = {
            let mut l: Vec<u8> = base.events().iter().filter_map(|e| e.loc).collect();
            l.sort_unstable();
            l.dedup();
            l
        };
        let co_perms: Vec<Vec<Vec<usize>>> = locs
            .iter()
            .map(|&l| {
                let ws: Vec<usize> = writes
                    .iter()
                    .copied()
                    .filter(|&w| base.event(w).loc == Some(l))
                    .collect();
                perms(&ws)
            })
            .collect();
        let mut idx = vec![0usize; co_perms.len()];
        loop {
            let mut x = base.clone();
            let n = x.len();
            let mut rf = Rel::empty(n);
            for (i, &r) in reads.iter().enumerate() {
                if let Some(w) = rf_opts[i][rf_choice[i]] {
                    rf.add(w, r);
                }
            }
            let mut co = Rel::empty(n);
            for (li, perm) in idx.iter().enumerate() {
                let p = &co_perms[li][*perm];
                for i in 0..p.len() {
                    for j in (i + 1)..p.len() {
                        co.add(p[i], p[j]);
                    }
                }
            }
            x = Execution::from_parts(
                x.events().to_vec(),
                *x.po(),
                *x.addr(),
                *x.ctrl(),
                *x.data(),
                *x.rmw(),
                rf,
                co,
                vec![],
            );
            if x.check_wf().is_ok() {
                visit(&x);
            }
            // Advance co odometer.
            let mut i = 0;
            loop {
                if i == idx.len() {
                    break;
                }
                idx[i] += 1;
                if idx[i] < co_perms[i].len() {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
            if idx.iter().all(|&v| v == 0) {
                break;
            }
        }
        // Advance rf odometer.
        let mut i = 0;
        loop {
            if i == rf_choice.len() {
                return;
            }
            rf_choice[i] += 1;
            if rf_choice[i] < rf_opts[i].len() {
                break;
            }
            rf_choice[i] = 0;
            i += 1;
        }
    }
}

fn perms(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &f) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in perms(&rest) {
            p.insert(0, f);
            out.push(p);
        }
    }
    out
}

/// The lock variable gets the first location index after the data
/// locations (`LockVar`: fresh, only touched by introduced events).
fn lock_loc(x: &Execution) -> u8 {
    x.locations().max().map(|l| l + 1).unwrap_or(0)
}

/// Expand an abstract execution into concrete skeletons per Table 3,
/// enumerating the existential parts (rf/co on the lock variable).
///
/// Returns all well-formed concrete candidates; the caller checks each
/// against the architecture model.
pub fn expand(x: &Execution, target: ElisionTarget) -> Vec<Execution> {
    let m = lock_loc(x);
    let mut events: Vec<Event> = Vec::new();
    let mut map_main = vec![usize::MAX; x.len()];
    let mut ctrl_pairs: Vec<(usize, usize)> = Vec::new();
    let mut rmw_pairs: Vec<(usize, usize)> = Vec::new();
    let mut data_pairs: Vec<(usize, usize)> = Vec::new();
    let mut addr_pairs: Vec<(usize, usize)> = Vec::new();
    let mut txn_classes: Vec<Vec<usize>> = Vec::new();
    // Lock-variable reads needing rf enumeration, and whether they are
    // `Lt` reads (TxnReadsLockFree) — plus writes to m with a tag for
    // whether they came from `L` (lock-taken) or `U` (lock-free).
    let mut m_reads: Vec<(usize, bool)> = Vec::new();
    let mut m_lock_writes: Vec<usize> = Vec::new();
    let mut m_unlock_writes: Vec<usize> = Vec::new();

    for t in 0..x.num_threads() {
        let mut cur_txn: Option<Vec<usize>> = None;
        // ctrl sources pending: (source new id) — extends to all later
        // events of the thread.
        let mut ctrl_sources: Vec<usize> = Vec::new();
        for e in x.thread_events(t as u8) {
            let ev = x.event(e);
            let push = |events: &mut Vec<Event>, ev2: Event, txn: &mut Option<Vec<usize>>| {
                let id = events.len();
                events.push(ev2);
                if let Some(txn) = txn.as_mut() {
                    txn.push(id);
                }
                id
            };
            match ev.kind {
                EventKind::Call(Call::Lock) => {
                    match target {
                        ElisionTarget::X86 => {
                            let tst = push(&mut events, Event::read(ev.tid, m), &mut cur_txn);
                            m_reads.push((tst, false));
                            let r = push(&mut events, Event::read(ev.tid, m), &mut cur_txn);
                            m_reads.push((r, false));
                            let w = push(&mut events, Event::write(ev.tid, m), &mut cur_txn);
                            rmw_pairs.push((r, w));
                            ctrl_pairs.push((r, w));
                            m_lock_writes.push(w);
                        }
                        ElisionTarget::Power => {
                            let r = push(&mut events, Event::read(ev.tid, m), &mut cur_txn);
                            m_reads.push((r, false));
                            let w = push(&mut events, Event::write(ev.tid, m), &mut cur_txn);
                            rmw_pairs.push((r, w));
                            // ctrl from the load to the store-exclusive,
                            // then ctrl from the store-exclusive to the
                            // critical region (footnote 3), via isync.
                            ctrl_pairs.push((r, w));
                            ctrl_sources.push(w);
                            push(
                                &mut events,
                                Event::fence(ev.tid, Fence::Isync),
                                &mut cur_txn,
                            );
                            m_lock_writes.push(w);
                        }
                        ElisionTarget::Armv8 | ElisionTarget::Armv8Fixed => {
                            let r = push(
                                &mut events,
                                Event::read(ev.tid, m).with_attrs(Attrs::ACQ),
                                &mut cur_txn,
                            );
                            m_reads.push((r, false));
                            let w = push(&mut events, Event::write(ev.tid, m), &mut cur_txn);
                            rmw_pairs.push((r, w));
                            ctrl_pairs.push((r, w));
                            if target == ElisionTarget::Armv8Fixed {
                                push(&mut events, Event::fence(ev.tid, Fence::Dmb), &mut cur_txn);
                            }
                            m_lock_writes.push(w);
                        }
                    }
                }
                EventKind::Call(Call::Unlock) => match target {
                    ElisionTarget::X86 => {
                        let w = push(&mut events, Event::write(ev.tid, m), &mut cur_txn);
                        m_unlock_writes.push(w);
                    }
                    ElisionTarget::Power => {
                        push(&mut events, Event::fence(ev.tid, Fence::Sync), &mut cur_txn);
                        let w = push(&mut events, Event::write(ev.tid, m), &mut cur_txn);
                        m_unlock_writes.push(w);
                    }
                    ElisionTarget::Armv8 | ElisionTarget::Armv8Fixed => {
                        let w = push(
                            &mut events,
                            Event::write(ev.tid, m).with_attrs(Attrs::REL),
                            &mut cur_txn,
                        );
                        m_unlock_writes.push(w);
                    }
                },
                EventKind::Call(Call::TLock) => {
                    // The transaction opens; its first action reads the
                    // lock variable.
                    cur_txn = Some(Vec::new());
                    let r = push(&mut events, Event::read(ev.tid, m), &mut cur_txn);
                    m_reads.push((r, true));
                    ctrl_sources.push(r);
                }
                EventKind::Call(Call::TUnlock) => {
                    // Ut vanishes; the transaction closes.
                    if let Some(evs) = cur_txn.take() {
                        txn_classes.push(evs);
                    }
                    ctrl_sources.clear();
                }
                _ => {
                    let id = push(&mut events, *ev, &mut cur_txn);
                    map_main[e] = id;
                    for &src in &ctrl_sources {
                        ctrl_pairs.push((src, id));
                    }
                }
            }
        }
    }

    // Dependencies between data accesses carry over.
    for (a, b2) in x.data().pairs() {
        data_pairs.push((map_main[a], map_main[b2]));
    }
    for (a, b2) in x.addr().pairs() {
        addr_pairs.push((map_main[a], map_main[b2]));
    }

    let n = events.len();
    let mut po = Rel::empty(n);
    for a in 0..n {
        for b2 in (a + 1)..n {
            if events[a].tid == events[b2].tid {
                po.add(a, b2);
            }
        }
    }
    let base_co = {
        let mut co = Rel::empty(n);
        for (a, b2) in x.co().pairs() {
            co.add(map_main[a], map_main[b2]);
        }
        co
    };
    let base_rf = {
        let mut rf = Rel::empty(n);
        for (a, b2) in x.rf().pairs() {
            rf.add(map_main[a], map_main[b2]);
        }
        rf
    };

    // Existential completion on the lock variable: rf per m-read
    // (TxnReadsLockFree: Lt reads never observe an L write) and co over
    // the m-writes.
    let m_writes: Vec<usize> = m_lock_writes
        .iter()
        .chain(m_unlock_writes.iter())
        .copied()
        .collect();
    let rf_opts: Vec<Vec<Option<usize>>> = m_reads
        .iter()
        .map(|&(_, is_lt)| {
            let mut o: Vec<Option<usize>> = vec![None];
            for &w in &m_writes {
                if is_lt && m_lock_writes.contains(&w) {
                    continue; // TxnReadsLockFree
                }
                o.push(Some(w));
            }
            o
        })
        .collect();

    let mut out = Vec::new();
    let co_options = perms(&m_writes);
    let mut rf_choice = vec![0usize; m_reads.len()];
    loop {
        for co_perm in &co_options {
            let mut rf = base_rf;
            for (i, &(r, _)) in m_reads.iter().enumerate() {
                if let Some(w) = rf_opts[i][rf_choice[i]] {
                    rf.add(w, r);
                }
            }
            let mut co = base_co;
            for i in 0..co_perm.len() {
                for j in (i + 1)..co_perm.len() {
                    co.add(co_perm[i], co_perm[j]);
                }
            }
            let mut ctrl = Rel::empty(n);
            for &(a, b2) in &ctrl_pairs {
                ctrl.add(a, b2);
            }
            let mut data = Rel::empty(n);
            for &(a, b2) in &data_pairs {
                data.add(a, b2);
            }
            let mut addr = Rel::empty(n);
            for &(a, b2) in &addr_pairs {
                addr.add(a, b2);
            }
            let mut rmw = Rel::empty(n);
            for &(a, b2) in &rmw_pairs {
                rmw.add(a, b2);
            }
            let y = Execution::from_parts(
                events.clone(),
                po,
                addr,
                ctrl,
                data,
                rmw,
                rf,
                co,
                txn_classes
                    .iter()
                    .map(|evs| TxnClass {
                        events: evs.clone(),
                        atomic: false,
                    })
                    .collect(),
            );
            if y.check_wf().is_ok() {
                out.push(y);
            }
        }
        let mut i = 0;
        loop {
            if i == rf_choice.len() {
                return out;
            }
            rf_choice[i] += 1;
            if rf_choice[i] < rf_opts[i].len() {
                break;
            }
            rf_choice[i] = 0;
            i += 1;
        }
    }
}

/// The outcome of a lock-elision soundness check.
pub struct ElisionResult {
    /// A violating pair: abstract execution (CROrder-inconsistent) and
    /// its consistent concrete expansion.
    pub counterexample: Option<(Execution, Execution)>,
    /// Abstract candidates examined.
    pub abstract_candidates: usize,
    /// Concrete expansions checked.
    pub concrete_checked: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Whole (bounded) space covered?
    pub complete: bool,
}

/// Check lock elision on one target (the §8.3 experiment).
pub fn check_lock_elision(target: ElisionTarget, budget: Option<Duration>) -> ElisionResult {
    let model = target.model();
    let start = Instant::now();
    let mut abstract_candidates = 0usize;
    let mut concrete_checked = 0usize;
    let mut counterexample = None;
    let mut complete = true;

    abstract_candidates_driver(&mut |x| {
        if counterexample.is_some() {
            return;
        }
        if let Some(b) = budget {
            if start.elapsed() > b {
                complete = false;
                return;
            }
        }
        abstract_candidates += 1;
        // The abstract execution must break mutual exclusion (CROrder)
        // while being architecture-consistent on its own accesses.
        let a = x.analysis();
        if !violates_cr_order_analysis(&a) {
            return;
        }
        if !model.consistent_analysis(&a) {
            return;
        }
        for y in expand(x, target) {
            concrete_checked += 1;
            if model.consistent(&y) {
                counterexample = Some((x.clone(), y));
                return;
            }
        }
    });

    ElisionResult {
        counterexample,
        abstract_candidates,
        concrete_checked,
        elapsed: start.elapsed(),
        complete,
    }
}

fn abstract_candidates_driver(visit: &mut dyn FnMut(&Execution)) {
    abstract_candidates(visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_models::catalog;

    #[test]
    fn abstract_space_nonempty() {
        let mut n = 0;
        abstract_candidates_driver(&mut |x| {
            assert!(x.check_wf().is_ok());
            n += 1;
        });
        assert!(n > 100, "got {n}");
    }

    #[test]
    fn fig10_abstract_violates_cr_order() {
        let x = catalog::elision_abstract();
        assert!(violates_cr_order(&x));
        assert!(
            Armv8::tm().consistent(&x),
            "plain model ignores call events"
        );
    }

    #[test]
    fn expansion_contains_example_1_1() {
        // Expanding Fig. 10's abstract execution for ARMv8 must produce
        // (a completion equal to) the Example 1.1 concrete execution.
        let x = catalog::elision_abstract();
        let ys = expand(&x, ElisionTarget::Armv8);
        assert!(!ys.is_empty());
        let target = catalog::armv8_elision(false);
        let key = txmm_synth::canon_key(&target);
        assert!(
            ys.iter().any(|y| txmm_synth::canon_key(y) == key),
            "Example 1.1 must be among the {} completions",
            ys.len()
        );
    }

    #[test]
    fn armv8_elision_unsound() {
        // Table 2: ARMv8 lock elision has a counterexample, found fast.
        let r = check_lock_elision(ElisionTarget::Armv8, None);
        let (x, y) = r.counterexample.expect("ARMv8 elision is unsound");
        assert!(violates_cr_order(&x));
        assert!(Armv8::tm().consistent(&y));
    }

    #[test]
    fn armv8_fixed_elision_sound() {
        // The DMB repair: no counterexample in the bounded space.
        let r = check_lock_elision(ElisionTarget::Armv8Fixed, None);
        assert!(r.counterexample.is_none(), "DMB repair restores soundness");
        assert!(r.complete);
        assert!(r.concrete_checked > 0);
    }

    #[test]
    fn x86_elision_sound() {
        let r = check_lock_elision(ElisionTarget::X86, None);
        assert!(
            r.counterexample.is_none(),
            "x86 elision is sound in the bounded space"
        );
        assert!(r.complete);
    }

    #[test]
    fn power_elision_finds_candidate_pair() {
        // The paper's check timed out (Table 2: Unknown). Under Fig. 6
        // *as printed*, our exhaustive bounded search finds a candidate
        // pair — see EXPERIMENTS.md for the analysis (the operational
        // Power simulator does NOT exhibit it, pointing at a gap in the
        // printed axioms rather than a real Power bug).
        let r = check_lock_elision(ElisionTarget::Power, None);
        assert!(r.counterexample.is_some());
    }
}
