//! Compilation of C++ (with transactions) to hardware (§8.2).
//!
//! The mapping is the standard one (Wickerson et al., extended with
//! transactions): each C++ event becomes a target event, possibly with
//! leading/trailing fences; the π relation preserves `po`, dependencies,
//! `rf`, `co` and — the paper's extension — all `stxn` edges.
//!
//! Soundness is checked by bounded search for a pair `(X, Y)` with `X`
//! C++-inconsistent (and race-free), `Y = map(X)` target-consistent.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use txmm_core::{Attrs, Event, EventKind, Execution, Fence, Rel, TxnClass};
use txmm_models::{Arch, Cpp, Model};
use txmm_synth::enumerate::{visit_par, CandSeq};
use txmm_synth::par::worker_count;
use txmm_synth::{enumerate, EnumConfig};

/// Emit the target instruction sequence for one C++ event.
///
/// Returns `(pre, main, post)` event templates (thread ids filled in by
/// the caller) and whether the main access keeps a ctrl+isync tail
/// (Power acquire idiom).
fn map_event(ev: &Event, target: Arch) -> (Vec<Event>, Event, Vec<Event>, bool) {
    let tid = ev.tid;
    let mut pre = Vec::new();
    let mut post = Vec::new();
    let mut ctrl_isync_tail = false;
    let mut main = *ev;
    main.attrs = Attrs::NONE;
    match ev.kind {
        EventKind::Read => {
            let acq = ev.attrs.contains(Attrs::ACQ);
            let sc = ev.attrs.contains(Attrs::SC);
            match target {
                Arch::X86 => {}
                Arch::Power => {
                    if sc {
                        pre.push(Event::fence(tid, Fence::Sync));
                    }
                    if acq || sc {
                        post.push(Event::fence(tid, Fence::Isync));
                        ctrl_isync_tail = true;
                    }
                }
                Arch::Armv8 => {
                    if acq || sc {
                        main.attrs = Attrs::ACQ;
                    }
                }
                _ => unreachable!("hardware targets only"),
            }
        }
        EventKind::Write => {
            let rel = ev.attrs.contains(Attrs::REL);
            let sc = ev.attrs.contains(Attrs::SC);
            match target {
                Arch::X86 => {
                    if sc {
                        post.push(Event::fence(tid, Fence::MFence));
                    }
                }
                Arch::Power => {
                    if sc {
                        pre.push(Event::fence(tid, Fence::Sync));
                    } else if rel {
                        pre.push(Event::fence(tid, Fence::Lwsync));
                    }
                }
                Arch::Armv8 => {
                    if rel || sc {
                        main.attrs = Attrs::REL;
                    }
                }
                _ => unreachable!(),
            }
        }
        EventKind::Fence(Fence::CppFence) => {
            let sc = ev.attrs.contains(Attrs::SC);
            let acq_only = ev.attrs.contains(Attrs::ACQ) && !ev.attrs.contains(Attrs::REL);
            main = match target {
                Arch::X86 => {
                    // Only SC fences emit code on x86; weaker fences are
                    // compiler-only. We keep a no-op placeholder as the
                    // main event cannot vanish; use MFENCE for SC and
                    // model the others as nothing by emitting MFENCE
                    // only for SC.
                    if sc {
                        Event::fence(tid, Fence::MFence)
                    } else {
                        // Placeholder handled by caller (dropped).
                        Event::fence(tid, Fence::MFence)
                    }
                }
                Arch::Power => {
                    if sc {
                        Event::fence(tid, Fence::Sync)
                    } else {
                        Event::fence(tid, Fence::Lwsync)
                    }
                }
                Arch::Armv8 => {
                    if acq_only {
                        Event::fence(tid, Fence::DmbLd)
                    } else {
                        Event::fence(tid, Fence::Dmb)
                    }
                }
                _ => unreachable!(),
            };
        }
        _ => {}
    }
    (pre, main, post, ctrl_isync_tail)
}

/// Should this C++ fence vanish on the target (x86 non-SC fences)?
fn fence_vanishes(ev: &Event, target: Arch) -> bool {
    matches!(ev.kind, EventKind::Fence(Fence::CppFence))
        && target == Arch::X86
        && !ev.attrs.contains(Attrs::SC)
}

/// Map a C++ execution to the target architecture, preserving `po`,
/// dependencies, `rf`, `co` and `stxn` (the π relation of §8.2).
pub fn map_execution(x: &Execution, target: Arch) -> Execution {
    let mut events: Vec<Event> = Vec::new();
    let mut main_of = vec![usize::MAX; x.len()];
    // (thread, old event) -> emitted new ids, in order.
    let mut emitted: Vec<Vec<usize>> = vec![Vec::new(); x.len()];
    let mut acq_tails: Vec<usize> = Vec::new(); // new ids of Power acquire loads

    for t in 0..x.num_threads() {
        for e in x.thread_events(t as u8) {
            let ev = x.event(e);
            if fence_vanishes(ev, target) {
                // Identity-less: the fence compiles to nothing. Keep
                // main_of unset; dependency/txn bookkeeping skips it.
                continue;
            }
            let (pre, main, post, tail) = map_event(ev, target);
            for p in pre {
                emitted[e].push(events.len());
                events.push(p);
            }
            main_of[e] = events.len();
            emitted[e].push(events.len());
            if tail {
                acq_tails.push(events.len());
            }
            events.push(main);
            for p in post {
                emitted[e].push(events.len());
                events.push(p);
            }
        }
    }

    let n = events.len();
    let mut po = Rel::empty(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if events[a].tid == events[b].tid {
                po.add(a, b);
            }
        }
    }
    let remap = |rel: &Rel| -> Rel {
        let mut out = Rel::empty(n);
        for (a, b) in rel.pairs() {
            if main_of[a] != usize::MAX && main_of[b] != usize::MAX {
                out.add(main_of[a], main_of[b]);
            }
        }
        out
    };
    let mut ctrl = remap(x.ctrl());
    // Power acquire idiom: ctrl+isync from the load to every later event
    // of its thread.
    for &l in &acq_tails {
        for b in (l + 1)..n {
            if events[b].tid == events[l].tid {
                ctrl.add(l, b);
            }
        }
    }
    // Transactions: every emitted event of a member belongs to the txn.
    let txns: Vec<TxnClass> = x
        .txns()
        .iter()
        .map(|t| TxnClass {
            events: t
                .events
                .iter()
                .flat_map(|&e| emitted[e].iter().copied())
                .collect(),
            atomic: false,
        })
        .filter(|t| !t.events.is_empty())
        .collect();

    Execution::from_parts(
        events,
        po,
        remap(x.addr()),
        ctrl,
        remap(x.data()),
        remap(x.rmw()),
        remap(x.rf()),
        remap(x.co()),
        txns,
    )
}

/// The outcome of a bounded compilation-soundness check.
pub struct CompileResult {
    /// A violating pair `(X, Y)`.
    pub counterexample: Option<(Execution, Execution)>,
    /// Executions examined (race-free candidates).
    pub checked: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Whole space covered at this bound?
    pub complete: bool,
}

fn compile_cfg(events: usize) -> EnumConfig {
    EnumConfig {
        arch: Arch::Cpp,
        events,
        max_threads: 2,
        max_locs: 2,
        fences: false,
        deps: false,
        rmws: false,
        txns: true,
        attrs: true,
        atomic_txns: false,
    }
}

fn compile_target(target: Arch) -> Box<dyn Model> {
    match target {
        Arch::X86 => Box::new(txmm_models::X86::tm()),
        Arch::Power => Box::new(txmm_models::Power::tm()),
        Arch::Armv8 => Box::new(txmm_models::Armv8::tm()),
        _ => panic!("hardware targets only"),
    }
}

/// Does mapping `x` to the target expose an unsound compilation? The
/// candidate counts (`checked`) only when the hypotheses hold.
fn compile_violation(
    cpp: &Cpp,
    tgt: &dyn Model,
    target: Arch,
    x: &Execution,
    checked: &mut usize,
) -> Option<(Execution, Execution)> {
    let a = x.analysis();
    if cpp.consistent_analysis(&a) || cpp.racy_analysis(&a) {
        return None;
    }
    *checked += 1;
    let y = map_execution(x, target);
    debug_assert!(y.check_wf().is_ok());
    if tgt.consistent(&y) {
        Some((x.clone(), y))
    } else {
        None
    }
}

/// Search for an unsound compilation: `X` inconsistent and race-free in
/// C++, `map(X)` consistent on the target. Candidates stream across the
/// work-stealing pool; a counterexample on any worker stops the others
/// (the earliest in enumeration order is reported).
pub fn check_compilation(events: usize, target: Arch, budget: Option<Duration>) -> CompileResult {
    type Found = (CandSeq, (Execution, Execution));
    let cfg = compile_cfg(events);
    let cpp = Cpp::tm();
    let tgt = compile_target(target);
    let start = Instant::now();
    let stop = AtomicBool::new(false);
    let overrun = AtomicBool::new(false);
    let checked_total = AtomicUsize::new(0);
    let (states, _) = visit_par(
        &cfg,
        worker_count(),
        |_| None::<Found>,
        |seq, x, counterexample| {
            if counterexample.is_some() || stop.load(Ordering::Relaxed) {
                return;
            }
            if let Some(b) = budget {
                if start.elapsed() > b {
                    overrun.store(true, Ordering::Relaxed);
                    stop.store(true, Ordering::Relaxed);
                    return;
                }
            }
            let mut checked = 0usize;
            if let Some(pair) = compile_violation(&cpp, tgt.as_ref(), target, x, &mut checked) {
                *counterexample = Some((seq, pair));
                stop.store(true, Ordering::Relaxed);
            }
            checked_total.fetch_add(checked, Ordering::Relaxed);
        },
    );
    let best = states
        .into_iter()
        .flatten()
        .min_by_key(|(seq, _)| *seq)
        .map(|(_, pair)| pair);
    CompileResult {
        counterexample: best,
        checked: checked_total.into_inner(),
        elapsed: start.elapsed(),
        complete: !overrun.load(Ordering::Relaxed),
    }
}

/// The sequential reference implementation of [`check_compilation`].
pub fn check_compilation_seq(
    events: usize,
    target: Arch,
    budget: Option<Duration>,
) -> CompileResult {
    let cfg = compile_cfg(events);
    let cpp = Cpp::tm();
    let tgt = compile_target(target);
    let start = Instant::now();
    let mut checked = 0usize;
    let mut counterexample = None;
    let mut complete = true;
    enumerate(&cfg, &mut |x| {
        if counterexample.is_some() {
            return;
        }
        if let Some(b) = budget {
            if start.elapsed() > b {
                complete = false;
                return;
            }
        }
        counterexample = compile_violation(&cpp, tgt.as_ref(), target, x, &mut checked);
    });
    CompileResult {
        counterexample,
        checked,
        elapsed: start.elapsed(),
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::ExecBuilder;

    fn mp_rel_acq() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _wx = b.write(t0, 0);
        let wy = b.write_ato(t0, 1, Attrs::REL);
        let t1 = b.new_thread();
        let ry = b.read_ato(t1, 1, Attrs::ACQ);
        let _rx = b.read(t1, 0);
        b.rf(wy, ry);
        b.build().unwrap()
    }

    #[test]
    fn mapping_wellformed_and_valid() {
        let x = mp_rel_acq();
        for target in [Arch::X86, Arch::Power, Arch::Armv8] {
            let y = map_execution(&x, target);
            assert!(y.check_wf().is_ok(), "{target:?}");
            assert!(target.validate(&y).is_ok(), "{target:?}");
        }
    }

    #[test]
    fn armv8_mapping_uses_acq_rel() {
        let y = map_execution(&mp_rel_acq(), Arch::Armv8);
        assert_eq!(y.len(), 4, "no fences inserted");
        assert_eq!(y.acq().len(), 1);
        assert_eq!(y.rel_events().len(), 1);
    }

    #[test]
    fn power_mapping_inserts_lwsync_and_ctrlisync() {
        let y = map_execution(&mp_rel_acq(), Arch::Power);
        assert_eq!(y.fence_events(Fence::Lwsync).len(), 1);
        assert_eq!(y.fence_events(Fence::Isync).len(), 1);
        // The acquire load gains ctrl edges past the isync.
        assert!(!y.ctrl().is_empty());
        // The mapped execution is forbidden on Power, like the source in
        // C++.
        assert!(!txmm_models::Power::tm().consistent(&y));
        assert!(!Cpp::tm().consistent(&mp_rel_acq()));
    }

    #[test]
    fn x86_mapping_forbidden_by_tso() {
        let y = map_execution(&mp_rel_acq(), Arch::X86);
        assert_eq!(y.len(), 4, "release/acquire are free on x86");
        assert!(!txmm_models::X86::tm().consistent(&y));
    }

    #[test]
    fn sc_store_gets_trailing_mfence_on_x86() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write_ato(t0, 0, Attrs::SC);
        b.read_ato(t0, 1, Attrs::SC);
        let x = b.build().unwrap();
        let y = map_execution(&x, Arch::X86);
        assert_eq!(y.fence_events(Fence::MFence).len(), 1);
        let order = y.thread_events(0);
        assert!(y.event(order.get(0)).is_write());
        assert!(y.event(order.get(1)).kind.is_fence());
        assert!(y.event(order.get(2)).is_read());
    }

    #[test]
    fn txns_map_to_txns_with_internal_fences() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write_ato(t0, 0, Attrs::REL);
        let r = b.read(t0, 1);
        b.txn(&[w, r]);
        let x = b.build().unwrap();
        let y = map_execution(&x, Arch::Power);
        assert_eq!(y.txns().len(), 1);
        // lwsync emitted inside the transaction belongs to it.
        assert_eq!(y.txns()[0].events.len(), 3);
        assert!(y.check_wf().is_ok());
    }

    #[test]
    fn compilation_sound_small_bound() {
        for target in [Arch::X86, Arch::Armv8, Arch::Power] {
            let r = check_compilation(3, target, None);
            assert!(
                r.counterexample.is_none(),
                "compilation to {target:?} must be sound (Table 2)"
            );
            assert!(r.complete);
        }
    }

    #[test]
    fn parallel_matches_sequential_reference() {
        let par = check_compilation(3, Arch::X86, None);
        let seq = check_compilation_seq(3, Arch::X86, None);
        assert_eq!(par.checked, seq.checked);
        assert_eq!(par.complete, seq.complete);
        assert_eq!(par.counterexample.is_some(), seq.counterexample.is_some());
    }
}
