//! Workspace-root package: hosts the repo-level integration tests in
//! `tests/` and the runnable tours in `examples/`. All functionality
//! lives in the `txmm` facade crate and the crates it re-exports.

pub use txmm;
