//! Compiling C++ (with transactions) to hardware (§8.2): show the
//! standard mappings on a message-passing program and run the bounded
//! soundness check against all three targets.
//!
//! ```sh
//! cargo run --release --example compile_check
//! ```

use txmm::core::display;
use txmm::models::Cpp;
use txmm::prelude::*;
use txmm::verify::map_execution;

fn main() {
    // A C++ message-passing program with a release/acquire flag and a
    // transactional payload.
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let wx = b.write(t0, 0);
    let wy = b.write_ato(t0, 1, Attrs::REL);
    b.txn_atomic(&[wx]);
    let t1 = b.new_thread();
    let ry = b.read_ato(t1, 1, Attrs::ACQ);
    let rx = b.read(t1, 0);
    b.txn_atomic(&[rx]);
    b.rf(wy, ry);
    let x = b.build().expect("well-formed");

    println!("== C++ source execution ==\n{}", display::render(&x));
    println!("C++ (TM) verdict: {}", Cpp::tm().check(&x));
    println!("racy: {}\n", Cpp::tm().racy(&x));

    for target in [Arch::X86, Arch::Power, Arch::Armv8] {
        let y = map_execution(&x, target);
        println!("== mapped to {} ==\n{}", target.name(), display::render(&y));
        let m = txmm::models::registry::by_name(match target {
            Arch::X86 => "x86-tm",
            Arch::Power => "power-tm",
            _ => "armv8-tm",
        })
        .expect("registered");
        println!("{} verdict: {}\n", target.name(), m.check(&y));
    }

    // The bounded soundness check of Table 2: no C++-forbidden,
    // race-free execution maps to a target-consistent one.
    println!("== bounded compilation-soundness check (|E| = 3) ==");
    for target in [Arch::X86, Arch::Power, Arch::Armv8] {
        let r = check_compilation(3, target, None);
        println!(
            "  C++ -> {:<6}  {} race-free forbidden executions checked in {:.2}s: {}",
            target.name(),
            r.checked,
            r.elapsed.as_secs_f64(),
            match r.counterexample {
                Some(_) => "UNSOUND (unexpected!)",
                None => "sound",
            }
        );
    }
}
