//! Quickstart: build an execution, check it against the models, turn it
//! into a litmus test, and run it on the simulated hardware.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use txmm::core::display;
use txmm::litmus::render;
use txmm::prelude::*;

fn main() {
    // Store buffering — the hallmark weak behaviour: each thread writes
    // one location and reads the other; both reads see initial values.
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let w0 = b.write(t0, 0); // x = 1
    let r0 = b.read(t0, 1); //  r0 = y (reads 0)
    let t1 = b.new_thread();
    let w1 = b.write(t1, 1); // y = 1
    let r1 = b.read(t1, 0); //  r1 = x (reads 0)
    let sb = b.build().expect("well-formed");

    println!(
        "== the store-buffering execution ==\n{}",
        display::render(&sb)
    );

    // Model verdicts: SC forbids it, every hardware model allows it.
    for model in txmm::models::registry::all_models() {
        if model.arch() == Arch::Cpp {
            continue; // needs C++ mode annotations
        }
        println!("  {:<8} -> {}", model.name(), model.check(&sb));
    }

    // Wrap both threads in transactions: now every transactional model
    // forbids it (transactions appear atomic, §3.4).
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let w0b = b.write(t0, 0);
    let r0b = b.read(t0, 1);
    let t1 = b.new_thread();
    let w1b = b.write(t1, 1);
    let r1b = b.read(t1, 0);
    b.txn(&[w0b, r0b]);
    b.txn(&[w1b, r1b]);
    let sb_txn = b.build().expect("well-formed");
    println!("\n== with both sides transactional ==");
    for name in ["x86-tm", "power-tm", "armv8-tm", "TSC"] {
        let m = txmm::models::registry::by_name(name).expect("registered");
        println!("  {:<8} -> {}", name, m.check(&sb_txn));
    }

    // Convert to a litmus test and run it on the exhaustive x86-TSO
    // simulator: the plain version is observable, the transactional one
    // is not.
    let plain = litmus_from_execution("SB", &sb, Arch::X86);
    let txn = litmus_from_execution("SB+txns", &sb_txn, Arch::X86);
    println!("\n== x86 litmus test ==\n{}", render::assembly(&plain));
    println!(
        "observable on the x86-TSO+TSX simulator: {}",
        TsoSim.observable(&plain)
    );
    println!(
        "transactional version observable:        {}",
        TsoSim.observable(&txn)
    );

    let _ = (w0, r0, w1, r1);
}
