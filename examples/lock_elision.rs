//! The paper's headline finding, end to end: lock elision is unsound
//! under the proposed ARMv8 TM extension (Example 1.1 / Fig. 10 / §8.3),
//! sound on x86, and repaired on ARMv8 by a DMB.
//!
//! ```sh
//! cargo run --example lock_elision
//! ```

use txmm::core::display;
use txmm::litmus::render;
use txmm::models::catalog;
use txmm::prelude::*;
use txmm::verify::violates_cr_order;

fn main() {
    // 1. The abstract program (Fig. 10, left): two critical regions on
    //    x, the second elided. Its communication edges violate mutual
    //    exclusion — CROrder rejects it.
    let abstract_x = catalog::elision_abstract();
    println!(
        "== abstract execution (Fig. 10, left) ==\n{}",
        display::render(&abstract_x)
    );
    println!(
        "violates CROrder (mutual exclusion): {}\n",
        violates_cr_order(&abstract_x)
    );

    // 2. The concrete ARMv8 execution (Example 1.1): the recommended
    //    spinlock on thread 0, lock elision on thread 1. CONSISTENT
    //    under the transactional ARMv8 model — the bug.
    let concrete = catalog::armv8_elision(false);
    println!(
        "== concrete ARMv8 execution (Example 1.1) ==\n{}",
        display::render(&concrete)
    );
    println!("ARMv8-TM verdict: {}", Armv8::tm().check(&concrete));

    // 3. It is not just an axiom artefact: the operational ARMv8
    //    simulator executes the forbidden outcome (x = 2).
    let test = litmus_from_execution("example-1.1", &concrete, Arch::Armv8);
    println!("\n== litmus test ==\n{}", render::assembly(&test));
    println!(
        "observable on the ARMv8 simulator: {}",
        ArmSim::default().observable(&test)
    );

    // 4. The §1.1 repair: append a DMB to lock(). Now the model forbids
    //    the execution and the simulator cannot reach it.
    let fixed = catalog::armv8_elision(true);
    let fixed_test = litmus_from_execution("example-1.1+dmb", &fixed, Arch::Armv8);
    println!("\n== with the DMB repair ==");
    println!("ARMv8-TM verdict: {}", Armv8::tm().check(&fixed));
    println!(
        "observable on the ARMv8 simulator: {}",
        ArmSim::default().observable(&fixed_test)
    );

    // 5. The automated §8.3 check across all four Table 3 columns.
    println!("\n== automated lock-elision check (§8.3) ==");
    for target in [
        ElisionTarget::X86,
        ElisionTarget::Power,
        ElisionTarget::Armv8,
        ElisionTarget::Armv8Fixed,
    ] {
        let r = check_lock_elision(target, None);
        println!(
            "  {:<14} {:>8.2?}  {}",
            target.name(),
            r.elapsed,
            match r.counterexample {
                Some(_) => "counterexample found",
                None => "no counterexample (bounded-exhaustive)",
            }
        );
    }

    // 6. Appendix B: the second witness — stores float too.
    let appb = catalog::armv8_elision_appendix_b(false);
    println!("\n== Appendix B witness ==");
    println!("ARMv8-TM verdict: {}", Armv8::tm().check(&appb));
    let appb_test = litmus_from_execution("appendix-b", &appb, Arch::Armv8);
    println!(
        "observable on the ARMv8 simulator: {}",
        ArmSim::default().observable(&appb_test)
    );
}
