//! Conformance-test synthesis (§4.2): generate the minimally-forbidden
//! and maximally-allowed suites for the transactional x86 model and run
//! them on the simulated hardware — a miniature Table 1 row.
//!
//! ```sh
//! cargo run --release --example synthesis
//! ```

use txmm::litmus::render;
use txmm::prelude::*;

fn main() {
    let events: usize = std::env::var("TXMM_MAX_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let cfg = EnumConfig {
        arch: Arch::X86,
        events,
        max_threads: 3,
        max_locs: 2,
        fences: true,
        deps: false,
        rmws: true,
        txns: true,
        attrs: false,
        atomic_txns: false,
    };
    println!("synthesising x86 Forbid/Allow suites at |E| = {events} ...");
    let r = synthesise(&cfg, &X86::tm(), &X86::base(), None);
    println!(
        "{} candidates -> {} Forbid, {} Allow ({:.2}s, {})\n",
        r.candidates,
        r.forbid.len(),
        r.allow.len(),
        r.elapsed.as_secs_f64(),
        if r.complete {
            "complete"
        } else {
            "non-exhaustive"
        },
    );

    for (i, f) in r.forbid.iter().enumerate() {
        let t = litmus_from_execution(&format!("forbid-{i}"), &f.exec, Arch::X86);
        println!("--- Forbid test {i} ---");
        println!("{}", render::pseudocode(&t));
        let verdict = X86::tm().check(&f.exec);
        println!("forbidden by: {}", verdict.violations().join(", "));
        println!(
            "observable on the x86 simulator: {} (must be false)\n",
            TsoSim.observable(&t)
        );
    }

    let seen = r
        .allow
        .iter()
        .filter(|a| {
            let t = litmus_from_execution("allow", a, Arch::X86);
            TsoSim.observable(&t)
        })
        .count();
    println!(
        "Allow suite: {}/{} observable on the simulator (the paper reports 83% across all sizes)",
        seen,
        r.allow.len()
    );
}
