//! Measurement driver for the pruned-enumeration numbers cited in the
//! README and pinned in `tests/enumeration_golden.rs`.
//!
//! Subcommands: `quick` (the |E| ≤ 4 spaces plus x86 |E| = 5),
//! `x866`/`power5`/`power6`/`armv85`/`armv86` (one heavyweight bound
//! each, hours+ for the latter three on one core), `profile` (walk
//! vs walk+check phase split) and `micro` (per-operation costs of the
//! shared-slot leaf-check path).
use std::time::Instant;
use txmm::models::{Arch, Armv8, Model, Power, X86};
use txmm::synth::{count_consistent_par, EnumConfig};

fn run(name: &str, arch: Arch, model: &dyn Model, events: usize) {
    let t0 = Instant::now();
    let (n, st) = count_consistent_par(&EnumConfig::hw(arch, events), model);
    println!(
        "{name} |E|={events}: {n} consistent in {:.2}s (cut={} skipped={} calls={} delta={} fallback={} batches={})",
        t0.elapsed().as_secs_f64(),
        st.subtrees_cut,
        st.candidates_skipped,
        st.oracle_calls,
        st.delta_answers,
        st.fallbacks,
        st.batches,
    );
}

fn profile_phases() {
    use txmm::models::Sc;
    use txmm::synth::{enumerate_pruned, oracle_for};
    let cfg = EnumConfig::hw(Arch::X86, 5);
    let model = X86::tm();
    let oracle = oracle_for(&model, false);

    let t0 = Instant::now();
    let mut visited = 0usize;
    enumerate_pruned(&cfg, oracle, &mut |_| visited += 1);
    println!("walk+clone+canon: {visited} visited in {:.2}s", t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let mut n = 0usize;
    enumerate_pruned(&cfg, oracle, &mut |x| {
        if model.consistent(x) {
            n += 1;
        }
    });
    println!("walk+check: {n} consistent in {:.2}s", t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let mut n = 0usize;
    let mut check = txmm::synth::LeafChecker::new(&model);
    enumerate_pruned(&cfg, oracle, &mut |x| {
        if check.consistent(x) {
            n += 1;
        }
    });
    println!("walk+shared-check: {n} consistent in {:.2}s", t0.elapsed().as_secs_f64());
    let _ = Sc;
}

fn microbench() {
    use txmm::core::TxnFreeBase;
    use txmm::synth::{enumerate_pruned, oracle_for};
    let cfg = EnumConfig::hw(Arch::X86, 5);
    let model = X86::tm();
    let oracle = oracle_for(&model, false);

    // Sample the survivor stream (every 60th, up to 30k candidates).
    let mut samples: Vec<txmm::core::Execution> = Vec::new();
    let mut seen = 0usize;
    enumerate_pruned(&cfg, oracle, &mut |x| {
        if seen % 60 == 0 && samples.len() < 30_000 {
            samples.push(x.clone());
        }
        seen += 1;
    });
    println!("sampled {} of {seen}", samples.len());
    let reps = 5;

    let t0 = Instant::now();
    let mut n = 0usize;
    for _ in 0..reps {
        for x in &samples {
            if model.consistent(x) {
                n += 1;
            }
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("full consistent: {per}ns each (n={n})");

    let base = TxnFreeBase::capture(&{
        let a = samples[0].analysis();
        model.consistent_analysis(&a);
        a
    });
    let t0 = Instant::now();
    let mut m = 0usize;
    for _ in 0..reps {
        for x in &samples {
            if base.matches(x) {
                m += 1;
            }
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("matches: {per}ns each (hits={m})");

    // seed+check on self-matching bases: capture per sample, then time
    // seed + consistent_analysis (the LeafChecker hit path).
    let bases: Vec<TxnFreeBase> = samples
        .iter()
        .map(|x| {
            let a = x.analysis();
            model.consistent_analysis(&a);
            TxnFreeBase::capture(&a)
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..reps {
        for (x, b) in samples.iter().zip(&bases) {
            let a = b.seed(x);
            std::hint::black_box(&a);
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("seed only: {per}ns each");

    let t0 = Instant::now();
    let mut n = 0usize;
    for _ in 0..reps {
        for (x, b) in samples.iter().zip(&bases) {
            if model.consistent_analysis(&b.seed(x)) {
                n += 1;
            }
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("seed+check: {per}ns each (n={n})");

    let t0 = Instant::now();
    for _ in 0..reps {
        for x in &samples {
            let b = TxnFreeBase::capture(&{
                let a = x.analysis();
                model.consistent_analysis(&a);
                a
            });
            std::hint::black_box(&b);
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("check+capture: {per}ns each");

    let t0 = Instant::now();
    for _ in 0..reps {
        for x in &samples {
            let y = x.with_txns(x.txns().to_vec());
            std::hint::black_box(&y);
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("with_txns clone: {per}ns each");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    match which.as_str() {
        "power5" => run("power", Arch::Power, &Power::tm(), 5),
        "armv85" => run("armv8", Arch::Armv8, &Armv8::tm(), 5),
        "x866" => run("x86", Arch::X86, &X86::tm(), 6),
        "power6" => run("power", Arch::Power, &Power::tm(), 6),
        "armv86" => run("armv8", Arch::Armv8, &Armv8::tm(), 6),
        "profile" => profile_phases(),
        "micro" => microbench(),
        "quick" => {
            run("x86", Arch::X86, &X86::tm(), 4);
            run("x86", Arch::X86, &X86::tm(), 5);
            run("power", Arch::Power, &Power::tm(), 4);
            run("armv8", Arch::Armv8, &Armv8::tm(), 4);
        }
        other => eprintln!("unknown target {other:?}"),
    }
}
