//! Measurement driver for the pruned-enumeration numbers cited in the
//! README and pinned in `tests/enumeration_golden.rs`.
//!
//! Subcommands: `quick` (the |E| ≤ 4 spaces plus x86 |E| = 5),
//! `x866`/`power5`/`power6`/`armv85`/`armv86` (one heavyweight bound
//! each, hours+ for the latter three on one core), `profile` (walk
//! vs walk+check phase split) and `micro` (per-operation costs of the
//! shared-slot leaf-check path).
//!
//! Every subcommand also takes `--progress[=SECS]` (heartbeat JSONL
//! frames on stderr) and `--metrics-listen ADDR` (scrapeable live
//! metrics) so the hours-long bounds can be watched; see
//! "Watching long runs" in the README.
use std::sync::Arc;
use std::time::{Duration, Instant};
use txmm::models::{Arch, Armv8, Model, Power, X86};
use txmm::obs::{serve_metrics, ProgressSink, Reporter, WalkProgress};
use txmm::synth::{count_consistent_par_progress, par::worker_count, EnumConfig};

/// Telemetry requested on the command line: progress accumulator plus
/// the heartbeat/sidecar it feeds (`None` fields when not asked for).
struct Telemetry {
    progress: Arc<WalkProgress>,
    reporter: Option<Reporter>,
    _sidecar: Option<txmm::obs::MetricsSidecar>,
}

fn telemetry() -> Option<Telemetry> {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut interval: Option<f64> = None;
    let mut listen: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--progress" {
            interval = Some(1.0);
        } else if let Some(v) = a.strip_prefix("--progress=") {
            interval = v.parse().ok().filter(|s| *s > 0.0).or(Some(1.0));
        } else if a == "--metrics-listen" {
            listen = it.next().cloned();
        }
    }
    if interval.is_none() && listen.is_none() {
        return None;
    }
    txmm::obs::publish_process_info();
    let progress = Arc::new(WalkProgress::new());
    let sidecar = listen.map(|addr| {
        let s = serve_metrics(&addr).expect("metrics sidecar");
        eprintln!("metrics sidecar listening on {}", s.addr());
        s
    });
    let reporter = interval.map(|secs| {
        Reporter::start(
            progress.clone(),
            Duration::from_secs_f64(secs),
            ProgressSink::Stderr,
        )
        .expect("progress reporter")
    });
    Some(Telemetry {
        progress,
        reporter,
        _sidecar: sidecar,
    })
}

fn run(tele: Option<&Telemetry>, name: &str, arch: Arch, model: &dyn Model, events: usize) {
    let t0 = Instant::now();
    let (n, st) = count_consistent_par_progress(
        &EnumConfig::hw(arch, events),
        model,
        worker_count(),
        tele.map(|t| t.progress.as_ref()),
    );
    println!(
        "{name} |E|={events}: {n} consistent in {:.2}s (cut={} skipped={} calls={} delta={} fallback={} batches={})",
        t0.elapsed().as_secs_f64(),
        st.subtrees_cut,
        st.candidates_skipped,
        st.oracle_calls,
        st.delta_answers,
        st.fallbacks,
        st.batches,
    );
}

fn profile_phases() {
    use txmm::models::Sc;
    use txmm::synth::{enumerate_pruned, oracle_for};
    let cfg = EnumConfig::hw(Arch::X86, 5);
    let model = X86::tm();
    let oracle = oracle_for(&model, false);

    let t0 = Instant::now();
    let mut visited = 0usize;
    enumerate_pruned(&cfg, oracle, &mut |_| visited += 1);
    println!(
        "walk+clone+canon: {visited} visited in {:.2}s",
        t0.elapsed().as_secs_f64()
    );

    let t0 = Instant::now();
    let mut n = 0usize;
    enumerate_pruned(&cfg, oracle, &mut |x| {
        if model.consistent(x) {
            n += 1;
        }
    });
    println!(
        "walk+check: {n} consistent in {:.2}s",
        t0.elapsed().as_secs_f64()
    );

    let t0 = Instant::now();
    let mut n = 0usize;
    let mut check = txmm::synth::LeafChecker::new(&model);
    enumerate_pruned(&cfg, oracle, &mut |x| {
        if check.consistent(x) {
            n += 1;
        }
    });
    println!(
        "walk+shared-check: {n} consistent in {:.2}s",
        t0.elapsed().as_secs_f64()
    );
    let _ = Sc;
}

fn microbench() {
    use txmm::core::TxnFreeBase;
    use txmm::synth::{enumerate_pruned, oracle_for};
    let cfg = EnumConfig::hw(Arch::X86, 5);
    let model = X86::tm();
    let oracle = oracle_for(&model, false);

    // Sample the survivor stream (every 60th, up to 30k candidates).
    let mut samples: Vec<txmm::core::Execution> = Vec::new();
    let mut seen = 0usize;
    enumerate_pruned(&cfg, oracle, &mut |x| {
        if seen.is_multiple_of(60) && samples.len() < 30_000 {
            samples.push(x.clone());
        }
        seen += 1;
    });
    println!("sampled {} of {seen}", samples.len());
    let reps = 5;

    let t0 = Instant::now();
    let mut n = 0usize;
    for _ in 0..reps {
        for x in &samples {
            if model.consistent(x) {
                n += 1;
            }
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("full consistent: {per}ns each (n={n})");

    let base = TxnFreeBase::capture(&{
        let a = samples[0].analysis();
        model.consistent_analysis(&a);
        a
    });
    let t0 = Instant::now();
    let mut m = 0usize;
    for _ in 0..reps {
        for x in &samples {
            if base.matches(x) {
                m += 1;
            }
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("matches: {per}ns each (hits={m})");

    // seed+check on self-matching bases: capture per sample, then time
    // seed + consistent_analysis (the LeafChecker hit path).
    let bases: Vec<TxnFreeBase> = samples
        .iter()
        .map(|x| {
            let a = x.analysis();
            model.consistent_analysis(&a);
            TxnFreeBase::capture(&a)
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..reps {
        for (x, b) in samples.iter().zip(&bases) {
            let a = b.seed(x);
            std::hint::black_box(&a);
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("seed only: {per}ns each");

    let t0 = Instant::now();
    let mut n = 0usize;
    for _ in 0..reps {
        for (x, b) in samples.iter().zip(&bases) {
            if model.consistent_analysis(&b.seed(x)) {
                n += 1;
            }
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("seed+check: {per}ns each (n={n})");

    let t0 = Instant::now();
    for _ in 0..reps {
        for x in &samples {
            let b = TxnFreeBase::capture(&{
                let a = x.analysis();
                model.consistent_analysis(&a);
                a
            });
            std::hint::black_box(&b);
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("check+capture: {per}ns each");

    let t0 = Instant::now();
    for _ in 0..reps {
        for x in &samples {
            let y = x.with_txns(x.txns().to_vec());
            std::hint::black_box(&y);
        }
    }
    let per = t0.elapsed().as_nanos() / (reps * samples.len()) as u128;
    println!("with_txns clone: {per}ns each");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    // One telemetry setup for the whole invocation: multi-bound
    // subcommands (`quick`) accumulate into the same progress stream
    // and keep one sidecar socket.
    let tele = telemetry();
    let t = tele.as_ref();
    match which.as_str() {
        "power5" => run(t, "power", Arch::Power, &Power::tm(), 5),
        "armv85" => run(t, "armv8", Arch::Armv8, &Armv8::tm(), 5),
        "x866" => run(t, "x86", Arch::X86, &X86::tm(), 6),
        "power6" => run(t, "power", Arch::Power, &Power::tm(), 6),
        "armv86" => run(t, "armv8", Arch::Armv8, &Armv8::tm(), 6),
        "profile" => profile_phases(),
        "micro" => microbench(),
        "quick" => {
            run(t, "x86", Arch::X86, &X86::tm(), 4);
            run(t, "x86", Arch::X86, &X86::tm(), 5);
            run(t, "power", Arch::Power, &Power::tm(), 4);
            run(t, "armv8", Arch::Armv8, &Armv8::tm(), 4);
        }
        other => eprintln!("unknown target {other:?}"),
    }
    if let Some(t) = tele {
        if let Some(r) = t.reporter {
            r.finish();
        }
    }
}
