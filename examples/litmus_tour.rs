//! A tour of the litmus-test machinery (§2.2, §3.2): every catalog
//! execution rendered as pseudocode and as native assembly for its
//! architecture, reproducing the figures' program listings.
//!
//! ```sh
//! cargo run --example litmus_tour
//! ```

use txmm::litmus::render;
use txmm::models::catalog;
use txmm::prelude::*;

fn main() {
    // Fig. 1: execution -> litmus test with rf pinned by unique values
    // and co pinned by the final-state check.
    let fig1 = litmus_from_execution("fig1", &catalog::fig1(), Arch::X86);
    println!("== Fig. 1 ==\n{}", render::pseudocode(&fig1));

    // Fig. 2: the transactional version gains txbegin/txend and an `ok`
    // flag in the postcondition.
    let fig2 = litmus_from_execution("fig2", &catalog::fig2(), Arch::X86);
    println!("== Fig. 2 ==\n{}", render::pseudocode(&fig2));
    println!("-- as x86 --\n{}", render::assembly(&fig2));

    // The same transactional shape in every architecture's dialect.
    for (arch, name) in [
        (Arch::Power, "== Power dialect =="),
        (Arch::Armv8, "== ARMv8 dialect =="),
    ] {
        let t = litmus_from_execution("fig2", &catalog::fig2(), arch);
        println!("{name}\n{}", render::assembly(&t));
    }

    // A C++ rendering with transactions-as-blocks.
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let w = b.write(t0, 0);
    let r = b.read(t0, 1);
    b.txn_atomic(&[w, r]);
    let t1 = b.new_thread();
    let w2 = b.write_ato(t1, 1, Attrs::SC);
    b.rf(w2, r);
    let x = b.build().expect("well-formed");
    let t = litmus_from_execution("cpp-demo", &x, Arch::Cpp);
    println!("== C++ dialect ==\n{}", render::assembly(&t));

    // Dependencies render as annotations the simulators enforce.
    let mp = litmus_from_execution(
        "mp+sync+addr",
        &catalog::mp(Some(Fence::Sync), true, false),
        Arch::Power,
    );
    println!("== MP+sync+addr (Power) ==\n{}", render::assembly(&mp));
}
